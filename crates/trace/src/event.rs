//! The trace vocabulary: event categories, event payloads and the
//! timestamped record stored in the per-thread buffers.
//!
//! Every payload is `Copy` and carries only `&'static str` names — a
//! recorded event never allocates, which is what keeps the instrumented
//! hot paths allocation-free even with tracing *enabled*.

/// Coarse subsystem classification, mapped to the `cat` field of Chrome
/// trace events (usable as a filter in Perfetto / `chrome://tracing`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// ADMM solver phases and per-iteration telemetry (mib-qp).
    Solver,
    /// KKT backend work: symbolic analysis, factorization, triangular
    /// solves, PCG (mib-qp linsys / mib-sparse work done on its behalf).
    Kkt,
    /// Compilation pipeline: routing, scheduling, lowering, packing,
    /// program-cache traffic (mib-compiler).
    Compiler,
    /// Request lifecycle on the serving runtime (mib-serve).
    Serve,
    /// Cycle-accurate machine model (mib-core).
    Machine,
    /// Per-stage vector/sparse kernel work inside solver iterations.
    /// High-frequency; only recorded when kernel spans are explicitly
    /// enabled (see [`enable_kernel_spans`](crate::enable_kernel_spans)).
    Kernel,
    /// Anything else (benchmarks, tests, ad-hoc instrumentation).
    Other,
}

impl Category {
    /// Stable lowercase name used by both exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Solver => "solver",
            Category::Kkt => "kkt",
            Category::Compiler => "compiler",
            Category::Serve => "serve",
            Category::Machine => "machine",
            Category::Kernel => "kernel",
            Category::Other => "other",
        }
    }
}

/// One traced occurrence. `Begin`/`End` pairs delimit spans (properly
/// nested per thread); the rest are point events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// Span opening, emitted by [`span`](crate::span).
    Begin {
        /// Span name (static so recording never allocates).
        name: &'static str,
        /// Subsystem.
        cat: Category,
    },
    /// Span closing, emitted by the guard's `Drop`.
    End {
        /// Span name, equal to the matching `Begin`.
        name: &'static str,
        /// Subsystem.
        cat: Category,
    },
    /// A named scalar observation (instant event with one value).
    Mark {
        /// Observation name.
        name: &'static str,
        /// Subsystem.
        cat: Category,
        /// Observed value.
        value: f64,
    },
    /// Per-iteration solver telemetry, recorded at termination-check
    /// boundaries. Residuals are the exact values the solver later
    /// reports in its `SolveResult` (bitwise).
    Iteration {
        /// Solver algorithm that produced the record (`"admm"`, `"pdqp"`;
        /// static so recording never allocates).
        algo: &'static str,
        /// 1-based solver iteration index.
        iter: u32,
        /// Unscaled primal residual at this check.
        prim_res: f64,
        /// Unscaled dual residual at this check.
        dual_res: f64,
        /// Base step size in effect (`ρ` for ADMM, `τ` for PDQP).
        rho: f64,
        /// PCG iterations spent since the previous record (0 for the
        /// direct backend and for PDQP).
        pcg_iters: u32,
        /// Nanoseconds spent inside the KKT backend since the previous
        /// record.
        kkt_ns: u64,
    },
    /// An adaptive-rho rescaling accepted by the solver.
    RhoUpdate {
        /// Iteration at which the update happened.
        iter: u32,
        /// Penalty before the update.
        rho_old: f64,
        /// Penalty after the update.
        rho_new: f64,
    },
    /// A program-cache lookup (mib-compiler `ProgramCache`).
    CacheAccess {
        /// Which cache / which program.
        name: &'static str,
        /// `true` on hit.
        hit: bool,
    },
    /// Quality of one compiled schedule: how well multi-issue packing
    /// compressed the logical instruction stream.
    ScheduleQuality {
        /// Program name ("load", "iteration", ...).
        name: &'static str,
        /// Packed slot count.
        slots: u32,
        /// Logical (pre-packing) instruction count.
        logical: u32,
        /// Instructions appended because the placement probe limit was
        /// exhausted (scheduler give-ups).
        forced_appends: u32,
        /// Exact cycles the machine will take to run the schedule, from
        /// the compiler's static cost oracle (0 when the oracle was
        /// skipped, e.g. verification disabled).
        predicted_cycles: u32,
    },
}

impl Event {
    /// The category the event belongs to (point events that carry no
    /// explicit category report the subsystem they are emitted by).
    pub fn category(&self) -> Category {
        match self {
            Event::Begin { cat, .. } | Event::End { cat, .. } | Event::Mark { cat, .. } => *cat,
            Event::Iteration { .. } | Event::RhoUpdate { .. } => Category::Solver,
            Event::CacheAccess { .. } | Event::ScheduleQuality { .. } => Category::Compiler,
        }
    }

    /// Display name used by the exporters.
    pub fn name(&self) -> &'static str {
        match self {
            Event::Begin { name, .. } | Event::End { name, .. } | Event::Mark { name, .. } => name,
            Event::Iteration { .. } => "iteration",
            Event::RhoUpdate { .. } => "rho_update",
            Event::CacheAccess { .. } => "cache_access",
            Event::ScheduleQuality { .. } => "schedule_quality",
        }
    }
}

/// A timestamped event as stored in (and drained from) a thread buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Record {
    /// Nanoseconds since the trace epoch (the first [`enable`] call of
    /// the process), monotonic within a thread.
    ///
    /// [`enable`]: crate::enable
    pub ts_ns: u64,
    /// Process-unique id of the span this record belongs to (the id of
    /// the span itself for `Begin`/`End`, the innermost enclosing span —
    /// or 0 at top level — for point events).
    pub span: u64,
    /// The payload.
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_have_distinct_names() {
        let cats = [
            Category::Solver,
            Category::Kkt,
            Category::Compiler,
            Category::Serve,
            Category::Machine,
            Category::Kernel,
            Category::Other,
        ];
        for (i, a) in cats.iter().enumerate() {
            for b in &cats[i + 1..] {
                assert_ne!(a.as_str(), b.as_str());
            }
        }
    }

    #[test]
    fn event_names_and_categories() {
        let e = Event::Begin {
            name: "solve",
            cat: Category::Solver,
        };
        assert_eq!(e.name(), "solve");
        assert_eq!(e.category(), Category::Solver);
        let e = Event::Iteration {
            algo: "admm",
            iter: 3,
            prim_res: 1.0,
            dual_res: 2.0,
            rho: 0.1,
            pcg_iters: 0,
            kkt_ns: 42,
        };
        assert_eq!(e.name(), "iteration");
        assert_eq!(e.category(), Category::Solver);
        let e = Event::CacheAccess {
            name: "program_cache",
            hit: true,
        };
        assert_eq!(e.category(), Category::Compiler);
    }
}
