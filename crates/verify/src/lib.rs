//! **mib-verify** — static dataflow verifier and lint pass for compiled
//! MIB schedules.
//!
//! [`verify_program`] analyzes a program *without executing it* and proves
//! (or refutes) that [`mib_core::machine::Machine::run`] under the strict
//! hazard policy would accept it:
//!
//! * a **def-use / liveness dataflow** over the register banks and
//!   per-lane broadcast latches shows every read issues outside its
//!   producer's latency window (`latency = log₂C + 2` slots), and flags
//!   dead writes, same-slot double writes and reads of uninitialized
//!   locations (the program's live-in set),
//! * a **structural linter** checks instruction widths, register address
//!   ranges, writebacks of undriven (architectural-zero) lanes, and that
//!   the HBM stream is consumed exactly — the machine reads words
//!   positionally, so any count mismatch is a bug,
//! * a **register-pressure report** gives peak live values per bank
//!   against the configured bank depth.
//!
//! Every finding is a [`Diagnostic`] carrying provenance: severity, issue
//! slot, and the storage [`Loc`] involved. A program with zero
//! [`Severity::Error`] findings is **certified**: the machine's strict
//! execution provably cannot reject it. The converse also holds — every
//! error-severity kind corresponds to a concrete `MibError` the machine
//! raises — so the static verdict and the dynamic one never disagree
//! (property-tested in `tests/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod critical_path;
pub mod diag;
pub mod report;
pub mod timing;

mod dataflow;
mod structural;

pub use critical_path::{critical_path, CriticalHop, CriticalPath};
pub use diag::{DiagKind, Diagnostic, Loc, Severity};
pub use report::{BankPressure, Certificate, PressureReport, Report, TimingSummary};
pub use timing::{predict, StaticTiming};

use mib_core::instruction::NetInstruction;
use mib_core::machine::HazardPolicy;
use mib_core::MibConfig;

/// Statically verifies one program against a machine configuration and an
/// HBM stream of `hbm_words` words.
///
/// `name` labels the report (e.g. the schedule's phase, `"iteration"`).
/// The returned [`Report`] is certified iff strict execution would accept
/// the program; warnings and infos never block certification.
pub fn verify_program(
    name: &str,
    program: &[NetInstruction],
    hbm_words: usize,
    config: &MibConfig,
) -> Report {
    let (mut diagnostics, width_mismatch) = structural::check(program, hbm_words, config);
    let (pressure, timing) = if width_mismatch {
        // Mixed widths make lane indexing meaningless; the width errors
        // alone already refute the program.
        (
            PressureReport {
                banks: Vec::new(),
                bank_depth: config.bank_depth,
            },
            None,
        )
    } else {
        let (flow_diags, pressure) = dataflow::analyze(program, config);
        diagnostics.extend(flow_diags);
        // Exact timing prediction under the stall policy (a certified
        // program has zero stalls, so this equals its strict cycle
        // count); faulting programs carry no timing.
        let timing = timing::predict(program, hbm_words, config, HazardPolicy::Stall)
            .ok()
            .map(|t| {
                let cp = critical_path::critical_path(program, config);
                TimingSummary {
                    predicted_cycles: t.stats.cycles,
                    stall_cycles: t.stats.stall_cycles,
                    critical_path_cycles: cp.cycles,
                    critical_path_hops: cp.hops.len(),
                }
            });
        (pressure, timing)
    };
    // Deterministic report order: most severe first, then by slot
    // (whole-program findings last), then by location — byte-stable
    // across runs and platforms.
    diagnostics.sort_by_key(|d| {
        (
            std::cmp::Reverse(d.severity),
            d.slot.map_or((1, 0), |s| (0, s)),
            d.kind.loc(),
        )
    });
    Report {
        name: name.to_string(),
        slots: program.len(),
        diagnostics,
        pressure,
        timing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mib_core::instruction::{LaneSource, LaneWrite, WriteMode};

    fn config8() -> MibConfig {
        MibConfig {
            width: 8,
            bank_depth: 64,
            clock_hz: 1e6,
        }
    }

    /// `dst[lane] <- stream` for one lane.
    fn load(lane: usize, addr: usize) -> NetInstruction {
        let mut i = NetInstruction::nop(8);
        i.set_input(lane, LaneSource::Stream);
        i.route(lane, lane);
        i.set_write(
            lane,
            LaneWrite {
                addr,
                mode: WriteMode::Store,
            },
        );
        i
    }

    /// `dst[lane][dst_addr] <- reg[lane][src_addr]`.
    fn copy(lane: usize, src_addr: usize, dst_addr: usize) -> NetInstruction {
        let mut i = NetInstruction::nop(8);
        i.set_input(lane, LaneSource::Reg { addr: src_addr });
        i.route(lane, lane);
        i.set_write(
            lane,
            LaneWrite {
                addr: dst_addr,
                mode: WriteMode::Store,
            },
        );
        i
    }

    fn nop_slots(n: usize) -> Vec<NetInstruction> {
        vec![NetInstruction::nop(8); n]
    }

    #[test]
    fn clean_program_certifies() {
        let cfg = config8();
        let latency = cfg.latency() as usize;
        let mut prog = vec![load(0, 3)];
        prog.extend(nop_slots(latency - 1));
        prog.push(copy(0, 3, 4));
        let report = verify_program("clean", &prog, 1, &cfg);
        assert!(report.is_certified(), "{report}");
        assert_eq!(report.count(Severity::Error), 0);
        assert_eq!(report.slots, latency + 1);
    }

    #[test]
    fn hazard_read_is_flagged_with_provenance() {
        let cfg = config8();
        let prog = vec![load(0, 3), copy(0, 3, 4)];
        let report = verify_program("hazard", &prog, 1, &cfg);
        assert!(!report.is_certified());
        let err = report.errors().next().unwrap();
        assert_eq!(err.slot, Some(1));
        assert!(matches!(
            err.kind,
            DiagKind::HazardRead {
                loc: Loc::Reg { bank: 0, addr: 3 },
                write_slot: 0,
                rmw: false,
                ..
            }
        ));
    }

    #[test]
    fn rmw_writeback_hazard_is_flagged() {
        let cfg = config8();
        // Slot 0 stores to (0, 3); slot 1 accumulates into (0, 3) — the
        // writeback's implicit read is inside the latency window.
        let mut prog = vec![load(0, 3)];
        let mut i = NetInstruction::nop(8);
        i.set_input(0, LaneSource::Stream);
        i.route(0, 0);
        i.set_write(
            0,
            LaneWrite {
                addr: 3,
                mode: WriteMode::Add,
            },
        );
        prog.push(i);
        let report = verify_program("rmw", &prog, 2, &cfg);
        assert!(report
            .errors()
            .any(|d| matches!(d.kind, DiagKind::HazardRead { rmw: true, .. })));
    }

    #[test]
    fn latch_hazard_is_flagged() {
        let cfg = config8();
        let mut bcast = NetInstruction::nop(8);
        bcast.set_input(1, LaneSource::Reg { addr: 0 });
        for dst in 0..8 {
            bcast.route(1, dst);
        }
        for lane in 0..8 {
            bcast.set_write(
                lane,
                LaneWrite {
                    addr: 0,
                    mode: WriteMode::Latch,
                },
            );
        }
        let mut elim = NetInstruction::nop(8);
        elim.set_input(
            0,
            LaneSource::RegTimesLatch {
                addr: 1,
                negate: true,
            },
        );
        elim.route(0, 0);
        elim.set_write(
            0,
            LaneWrite {
                addr: 0,
                mode: WriteMode::Add,
            },
        );
        let report = verify_program("latch", &[bcast, elim], 0, &cfg);
        assert!(report.errors().any(|d| matches!(
            d.kind,
            DiagKind::HazardRead {
                loc: Loc::Latch { lane: 0 },
                ..
            }
        )));
    }

    #[test]
    fn stream_accounting_catches_both_directions() {
        let cfg = config8();
        let prog = vec![load(0, 3)];
        let under = verify_program("under", &prog, 0, &cfg);
        assert!(under.errors().any(|d| matches!(
            d.kind,
            DiagKind::StreamUnderflow {
                consumed: 1,
                provided: 0
            }
        )));
        let over = verify_program("over", &prog, 2, &cfg);
        assert!(over.is_certified());
        assert!(over.diagnostics.iter().any(|d| matches!(
            d.kind,
            DiagKind::StreamSurplus {
                consumed: 1,
                provided: 2
            }
        )));
    }

    #[test]
    fn dead_write_and_live_in_are_reported() {
        let cfg = config8();
        let latency = cfg.latency() as usize;
        // Slot 0 writes (0, 3); never read; overwritten later. Also a read
        // of never-written (1, 9) -> live-in info.
        let mut prog = vec![load(0, 3)];
        prog.extend(nop_slots(latency));
        prog.push(copy(1, 9, 10));
        prog.push(load(0, 3));
        let report = verify_program("lints", &prog, 2, &cfg);
        assert!(report.is_certified(), "{report}");
        assert!(report.diagnostics.iter().any(|d| matches!(
            d.kind,
            DiagKind::DeadWrite {
                loc: Loc::Reg { bank: 0, addr: 3 },
                write_slot: 0,
            }
        )));
        // The live-in sample carries the first-read slot as provenance.
        assert!(report.diagnostics.iter().any(|d| matches!(
            &d.kind,
            DiagKind::ReadBeforeInit { count: 1, sample } if sample
                == &vec![(Loc::Reg { bank: 1, addr: 9 }, latency + 1)]
        )));
    }

    #[test]
    fn rmw_overwrite_is_not_a_dead_write() {
        let cfg = config8();
        let latency = cfg.latency() as usize;
        let mut prog = vec![load(0, 3)];
        prog.extend(nop_slots(latency - 1));
        let mut acc = NetInstruction::nop(8);
        acc.set_input(0, LaneSource::Stream);
        acc.route(0, 0);
        acc.set_write(
            0,
            LaneWrite {
                addr: 3,
                mode: WriteMode::Add,
            },
        );
        prog.push(acc);
        let report = verify_program("rmw-overwrite", &prog, 2, &cfg);
        assert!(report.is_certified(), "{report}");
        assert!(!report
            .diagnostics
            .iter()
            .any(|d| matches!(d.kind, DiagKind::DeadWrite { .. })));
    }

    #[test]
    fn width_and_address_errors() {
        let cfg = config8();
        let report = verify_program("width", &[NetInstruction::nop(4)], 0, &cfg);
        assert!(report.errors().any(|d| matches!(
            d.kind,
            DiagKind::WidthMismatch {
                got: 4,
                expected: 8
            }
        )));

        let report = verify_program("addr", &[copy(2, 64, 0)], 0, &cfg);
        assert!(report.errors().any(|d| matches!(
            d.kind,
            DiagKind::AddressOutOfRange {
                loc: Loc::Reg { bank: 2, addr: 64 },
                depth: 64,
            }
        )));
    }

    #[test]
    fn undriven_write_is_warned() {
        let cfg = config8();
        // A writeback on a lane whose final stage is idle commits zero.
        let mut i = NetInstruction::nop(8);
        i.set_write(
            5,
            LaneWrite {
                addr: 0,
                mode: WriteMode::Store,
            },
        );
        let report = verify_program("undriven", &[i], 0, &cfg);
        assert!(report.is_certified());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| matches!(d.kind, DiagKind::UndrivenWrite { lane: 5 })));
    }

    #[test]
    fn pressure_tracks_peak_live_values() {
        let cfg = config8();
        let latency = cfg.latency() as usize;
        // Two values live simultaneously in bank 0.
        let mut prog = vec![load(0, 1), load(0, 2)];
        prog.extend(nop_slots(latency));
        prog.push(copy(0, 1, 3));
        prog.push(copy(0, 2, 4));
        let report = verify_program("pressure", &prog, 2, &cfg);
        assert!(report.is_certified(), "{report}");
        assert!(report.pressure.banks[0].peak_live >= 2);
        assert_eq!(report.pressure.banks[7].peak_live, 0);
        assert!(report.pressure.banks[0].touched >= 4);
        assert_eq!(report.pressure.bank_depth, 64);
    }

    #[test]
    fn empty_program_is_trivially_certified() {
        let report = verify_program("empty", &[], 0, &config8());
        assert!(report.is_certified());
        assert_eq!(report.pressure.peak_live(), 0);
        assert_eq!(report.timing.map(|t| t.predicted_cycles), Some(0));
    }

    #[test]
    fn report_carries_exact_timing_and_critical_path() {
        let cfg = config8();
        let latency = cfg.latency() as usize;
        let mut prog = vec![load(0, 3)];
        prog.extend(nop_slots(latency - 1));
        prog.push(copy(0, 3, 4));
        let report = verify_program("timed", &prog, 1, &cfg);
        let timing = report.timing.expect("runnable program has timing");
        assert_eq!(timing.predicted_cycles, (prog.len() + latency) as u64);
        assert_eq!(timing.stall_cycles, 0);
        assert_eq!(timing.critical_path_cycles, timing.predicted_cycles);
        // load -> copy is a tight dependence: exactly one hop.
        assert_eq!(timing.critical_path_hops, 1);
        assert!(report.to_string().contains("predicted"), "{report}");

        // A faulting program (stream underflow) carries no timing.
        let report = verify_program("faulty", &[load(0, 3)], 0, &cfg);
        assert!(report.timing.is_none());
    }

    #[test]
    fn diagnostics_are_sorted_by_severity_slot_loc() {
        let cfg = config8();
        let latency = cfg.latency() as usize;
        // A program producing findings of every severity, anchored to
        // slots out of order: a hazard (error) late in the program, a
        // dead write (warning) early, a live-in read (info, global).
        let mut prog = vec![load(0, 3)]; // dead write at slot 0
        prog.push(copy(1, 9, 10)); // live-in read of (1, 9)
        prog.extend(nop_slots(latency));
        prog.push(load(0, 3)); // overwrite -> dead write
        prog.push(copy(0, 3, 4)); // hazard: read inside latency window
        let report = verify_program("sorted", &prog, 2, &cfg);
        assert!(!report.is_certified());
        // Severities are non-increasing across the report.
        let sevs: Vec<Severity> = report.diagnostics.iter().map(|d| d.severity).collect();
        let mut sorted = sevs.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(sevs, sorted, "{report}");
        // Byte-stable: re-verifying yields the identical report text.
        let again = verify_program("sorted", &prog, 2, &cfg);
        assert_eq!(report.to_string(), again.to_string());
        assert_eq!(report, again);
    }
}
