//! Structural lints: per-slot checks that need no dataflow — width,
//! address ranges, undriven writebacks — plus whole-program HBM stream
//! accounting.

use std::collections::HashSet;

use mib_core::instruction::{NetInstruction, WriteMode};
use mib_core::MibConfig;

use crate::diag::{DiagKind, Diagnostic, Loc};

/// Runs the structural pass. Returns the diagnostics and whether any slot
/// had a width mismatch (in which case the caller skips the dataflow pass:
/// lane indexing is not meaningful across mixed widths, and the machine
/// rejects the program at its first mismatching slot anyway).
pub fn check(
    program: &[NetInstruction],
    hbm_words: usize,
    config: &MibConfig,
) -> (Vec<Diagnostic>, bool) {
    let mut diags = Vec::new();
    let mut width_mismatch = false;
    let mut consumed = 0usize;

    for (t, inst) in program.iter().enumerate() {
        if inst.width() != config.width {
            width_mismatch = true;
            diags.push(Diagnostic::at_slot(
                t,
                DiagKind::WidthMismatch {
                    got: inst.width(),
                    expected: config.width,
                },
            ));
            continue;
        }
        consumed += inst.stream_words();

        // Address-range check over every register access (reads, RMW reads
        // and writes share addresses, so dedupe per slot).
        let mut flagged: HashSet<Loc> = HashSet::new();
        let mut range = |loc: Loc, addr: usize, diags: &mut Vec<Diagnostic>| {
            if addr >= config.bank_depth && flagged.insert(loc) {
                diags.push(Diagnostic::at_slot(
                    t,
                    DiagKind::AddressOutOfRange {
                        loc,
                        depth: config.bank_depth,
                    },
                ));
            }
        };
        for (lane, addr) in inst.reg_read_locs() {
            range(Loc::Reg { bank: lane, addr }, addr, &mut diags);
        }
        for (lane, w) in inst.write_locs() {
            if w.mode != WriteMode::Latch {
                range(
                    Loc::Reg {
                        bank: lane,
                        addr: w.addr,
                    },
                    w.addr,
                    &mut diags,
                );
            }
            if !inst.lane_driven(lane) {
                diags.push(Diagnostic::at_slot(t, DiagKind::UndrivenWrite { lane }));
            }
        }
    }

    // Stream accounting: the machine consumes words positionally, so the
    // totals must match exactly. Too few words is a runtime error
    // (`StreamExhausted`); too many is wasted bandwidth and almost always
    // an upstream consumption-order bug.
    if consumed > hbm_words {
        diags.push(Diagnostic::global(DiagKind::StreamUnderflow {
            consumed,
            provided: hbm_words,
        }));
    } else if consumed < hbm_words {
        diags.push(Diagnostic::global(DiagKind::StreamSurplus {
            consumed,
            provided: hbm_words,
        }));
    }

    (diags, width_mismatch)
}
