//! Diagnostics with provenance: every finding names the issue slot it
//! anchors to and, where applicable, the storage location involved.

use std::fmt;

/// How serious a finding is.
///
/// `Error` diagnostics are exactly the class of defects the machine's
/// [`mib_core::machine::HazardPolicy::Strict`] execution (or its width /
/// address / stream checks) would reject at runtime — a program is
/// *certified* iff it has none. `Warning` marks legal-but-wasteful
/// constructs (dead writes, surplus stream words, packing fallbacks);
/// `Info` carries analysis facts (live-in locations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Analysis fact; no action needed.
    Info,
    /// Legal but suspicious or wasteful.
    Warning,
    /// The machine would reject this program.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// A storage location of the machine: a register-bank word or a lane's
/// broadcast latch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Loc {
    /// `bank[addr]` of the banked register files.
    Reg {
        /// Bank (= lane) index.
        bank: usize,
        /// Address within the bank.
        addr: usize,
    },
    /// The broadcast latch of a lane.
    Latch {
        /// Lane index.
        lane: usize,
    },
}

impl Loc {
    /// The bank/lane component of the location.
    pub fn bank(&self) -> usize {
        match *self {
            Loc::Reg { bank, .. } => bank,
            Loc::Latch { lane } => lane,
        }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Loc::Reg { bank, addr } => write!(f, "bank {bank} addr {addr}"),
            Loc::Latch { lane } => write!(f, "lane {lane} latch"),
        }
    }
}

/// What a diagnostic is about.
///
/// The first group mirrors the machine's runtime failure modes one-to-one;
/// the second group holds schedule-level lints a runtime execution cannot
/// see. Kinds prefixed `Packing*` are produced by the compiler's
/// kernel-aware cross-checker, not by [`crate::verify_program`].
#[derive(Debug, Clone, PartialEq)]
pub enum DiagKind {
    /// A read (or the implicit read of a read-modify-write writeback)
    /// issues inside the producing write's latency window — the machine
    /// would raise `MibError::DataHazard`.
    HazardRead {
        /// Location read too early.
        loc: Loc,
        /// Slot of the pending write.
        write_slot: usize,
        /// First slot at which the write is architecturally visible.
        visible_slot: usize,
        /// Whether the offending read is a read-modify-write writeback.
        rmw: bool,
    },
    /// An instruction's width differs from the machine width
    /// (`MibError::WidthMismatch`).
    WidthMismatch {
        /// Width of the slot's instruction.
        got: usize,
        /// Machine width.
        expected: usize,
    },
    /// A register access outside the configured bank depth
    /// (`MibError::AddressOutOfRange`).
    AddressOutOfRange {
        /// Offending location.
        loc: Loc,
        /// Configured bank depth.
        depth: usize,
    },
    /// The program consumes more HBM words than the stream provides
    /// (`MibError::StreamExhausted`).
    StreamUnderflow {
        /// Words the program consumes.
        consumed: usize,
        /// Words the stream provides.
        provided: usize,
    },
    /// The stream provides words the program never consumes — wasted
    /// bandwidth, and a likely consumption-order bug upstream.
    StreamSurplus {
        /// Words the program consumes.
        consumed: usize,
        /// Words the stream provides.
        provided: usize,
    },
    /// A value is overwritten without ever having been read — the earlier
    /// write was wasted work.
    DeadWrite {
        /// Location whose value dies.
        loc: Loc,
        /// Slot of the overwritten (dead) write.
        write_slot: usize,
    },
    /// Two writebacks in one slot target the same location; the commit
    /// order inside a slot is undefined. (Structurally unreachable through
    /// `NetInstruction`'s one-write-port-per-lane invariant; checked as
    /// defense in depth.)
    DoubleWrite {
        /// Location written twice.
        loc: Loc,
    },
    /// A writeback commits the architectural zero of an idle final-stage
    /// node — usually a routing that was dropped on the floor.
    UndrivenWrite {
        /// Lane whose writeback has no driven value.
        lane: usize,
    },
    /// Locations read before any write in this program: the program's
    /// live-in set, which callers must guarantee earlier programs (or the
    /// initial zero state) populated. One summary diagnostic per program.
    ReadBeforeInit {
        /// Number of distinct live-in locations.
        count: usize,
        /// A few sample locations with the slot of their **first** read,
        /// lowest bank/address first. Register and latch locations carry
        /// their provenance uniformly through [`Loc`], mirroring the
        /// `bank`/`addr`/`latch` fields of `MibError::DataHazard`.
        sample: Vec<(Loc, usize)>,
    },
    /// First-fit exhausted its probe limit and fell back to appending
    /// fresh slots; packing quality is degraded.
    ForcedAppends {
        /// How many instructions were force-appended.
        count: usize,
    },
    /// Two logical instructions packed into one slot collide on a network
    /// node or register port.
    PackingCollision {
        /// Logical index of the later instruction.
        logical: usize,
        /// The shared resource, as reported by the merge check.
        detail: String,
    },
    /// A logical instruction was placed closer to its producer than the
    /// dependency distance allows.
    PackingDependency {
        /// Logical index of the consumer.
        logical: usize,
        /// Logical index of the producer.
        producer: usize,
        /// Required minimum slot distance.
        required: u64,
        /// Actual slot distance.
        actual: u64,
    },
    /// The slot rebuilt from the kernel's logical instructions differs
    /// from the published program — the packer corrupted a merge.
    PackingSlotMismatch,
    /// The HBM stream rebuilt from the kernel differs from the published
    /// stream.
    PackingStreamMismatch {
        /// First differing word index (or the shorter length).
        word: usize,
    },
    /// One hop of the program's critical dependence chain (see
    /// `critical_path`): the slot's issue cycle was determined by this
    /// dependence, not by program order.
    CriticalPathHop {
        /// Location the dependence flows through.
        loc: Loc,
        /// Slot of the producing write.
        producer_slot: usize,
        /// Stall cycles the hop cost (0 for a tight, hazard-free
        /// dependence).
        stall_cycles: u64,
    },
}

impl DiagKind {
    /// The severity class this kind always carries.
    pub fn severity(&self) -> Severity {
        match self {
            DiagKind::HazardRead { .. }
            | DiagKind::WidthMismatch { .. }
            | DiagKind::AddressOutOfRange { .. }
            | DiagKind::StreamUnderflow { .. }
            | DiagKind::DoubleWrite { .. }
            | DiagKind::PackingCollision { .. }
            | DiagKind::PackingDependency { .. }
            | DiagKind::PackingSlotMismatch
            | DiagKind::PackingStreamMismatch { .. } => Severity::Error,
            DiagKind::StreamSurplus { .. }
            | DiagKind::DeadWrite { .. }
            | DiagKind::UndrivenWrite { .. }
            | DiagKind::ForcedAppends { .. } => Severity::Warning,
            DiagKind::ReadBeforeInit { .. } | DiagKind::CriticalPathHop { .. } => Severity::Info,
        }
    }

    /// The storage location the finding is about, when it has a single
    /// canonical one — the third component of the deterministic
    /// `(severity, slot, loc)` report ordering.
    pub fn loc(&self) -> Option<Loc> {
        match self {
            DiagKind::HazardRead { loc, .. }
            | DiagKind::AddressOutOfRange { loc, .. }
            | DiagKind::DeadWrite { loc, .. }
            | DiagKind::DoubleWrite { loc }
            | DiagKind::CriticalPathHop { loc, .. } => Some(*loc),
            DiagKind::ReadBeforeInit { sample, .. } => sample.first().map(|&(loc, _)| loc),
            _ => None,
        }
    }

    /// Short kebab-case name of the kind (stable; used in reports).
    pub fn name(&self) -> &'static str {
        match self {
            DiagKind::HazardRead { .. } => "hazard-read",
            DiagKind::WidthMismatch { .. } => "width-mismatch",
            DiagKind::AddressOutOfRange { .. } => "address-out-of-range",
            DiagKind::StreamUnderflow { .. } => "stream-underflow",
            DiagKind::StreamSurplus { .. } => "stream-surplus",
            DiagKind::DeadWrite { .. } => "dead-write",
            DiagKind::DoubleWrite { .. } => "double-write",
            DiagKind::UndrivenWrite { .. } => "undriven-write",
            DiagKind::ReadBeforeInit { .. } => "read-before-init",
            DiagKind::ForcedAppends { .. } => "forced-appends",
            DiagKind::PackingCollision { .. } => "packing-collision",
            DiagKind::PackingDependency { .. } => "packing-dependency",
            DiagKind::PackingSlotMismatch => "packing-slot-mismatch",
            DiagKind::PackingStreamMismatch { .. } => "packing-stream-mismatch",
            DiagKind::CriticalPathHop { .. } => "critical-path-hop",
        }
    }
}

impl fmt::Display for DiagKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagKind::HazardRead {
                loc,
                write_slot,
                visible_slot,
                rmw,
            } => {
                let what = if *rmw {
                    "read-modify-write of"
                } else {
                    "read of"
                };
                write!(
                    f,
                    "{what} {loc} inside the latency window: written at slot \
                     {write_slot}, visible from slot {visible_slot}"
                )
            }
            DiagKind::WidthMismatch { got, expected } => {
                write!(f, "instruction width {got} on a width-{expected} machine")
            }
            DiagKind::AddressOutOfRange { loc, depth } => {
                write!(f, "{loc} outside bank depth {depth}")
            }
            DiagKind::StreamUnderflow { consumed, provided } => write!(
                f,
                "program consumes {consumed} HBM words but the stream holds {provided}"
            ),
            DiagKind::StreamSurplus { consumed, provided } => write!(
                f,
                "stream holds {provided} HBM words but the program consumes only {consumed}"
            ),
            DiagKind::DeadWrite { loc, write_slot } => write!(
                f,
                "write to {loc} at slot {write_slot} is overwritten without being read"
            ),
            DiagKind::DoubleWrite { loc } => {
                write!(f, "two writebacks target {loc} in the same slot")
            }
            DiagKind::UndrivenWrite { lane } => write!(
                f,
                "lane {lane} writes back an undriven (architectural zero) value"
            ),
            DiagKind::ReadBeforeInit { count, sample } => {
                write!(f, "{count} location(s) read before any write (live-in):")?;
                for (loc, first_read_slot) in sample {
                    write!(f, " {loc} (first read at slot {first_read_slot});")?;
                }
                if *count > sample.len() {
                    write!(f, " …")?;
                }
                Ok(())
            }
            DiagKind::ForcedAppends { count } => write!(
                f,
                "first-fit probe limit exhausted {count} time(s); slots were force-appended"
            ),
            DiagKind::PackingCollision { logical, detail } => write!(
                f,
                "logical instruction {logical} collides with its slot's packing: {detail}"
            ),
            DiagKind::PackingDependency {
                logical,
                producer,
                required,
                actual,
            } => write!(
                f,
                "logical instruction {logical} is {actual} slot(s) after producer \
                 {producer}, but the dependency requires {required}"
            ),
            DiagKind::PackingSlotMismatch => {
                write!(f, "slot differs from the merge of its logical instructions")
            }
            DiagKind::PackingStreamMismatch { word } => write!(
                f,
                "HBM stream diverges from the kernel's words at index {word}"
            ),
            DiagKind::CriticalPathHop {
                loc,
                producer_slot,
                stall_cycles,
            } => write!(
                f,
                "critical-path dependence through {loc}: produced at slot \
                 {producer_slot}, {stall_cycles} stall cycle(s)"
            ),
        }
    }
}

/// One finding, with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Severity class (always `self.kind.severity()`).
    pub severity: Severity,
    /// Issue slot the finding anchors to (`None` for whole-program
    /// findings such as stream accounting).
    pub slot: Option<usize>,
    /// Logical instruction index, when the kernel-aware cross-checker
    /// knows it (`None` for post-merge program analysis).
    pub logical: Option<usize>,
    /// The finding itself.
    pub kind: DiagKind,
}

impl Diagnostic {
    /// Builds a diagnostic anchored to an issue slot.
    pub fn at_slot(slot: usize, kind: DiagKind) -> Self {
        Diagnostic {
            severity: kind.severity(),
            slot: Some(slot),
            logical: None,
            kind,
        }
    }

    /// Builds a whole-program diagnostic.
    pub fn global(kind: DiagKind) -> Self {
        Diagnostic {
            severity: kind.severity(),
            slot: None,
            logical: None,
            kind,
        }
    }

    /// Attaches a logical instruction index.
    pub fn with_logical(mut self, logical: usize) -> Self {
        self.logical = Some(logical);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.kind.name())?;
        if let Some(slot) = self.slot {
            write!(f, " slot {slot}")?;
        }
        if let Some(logical) = self.logical {
            write!(f, " (logical {logical})")?;
        }
        write!(f, ": {}", self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_prints() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn diagnostic_display_names_location_and_slot() {
        let d = Diagnostic::at_slot(
            12,
            DiagKind::HazardRead {
                loc: Loc::Reg { bank: 3, addr: 7 },
                write_slot: 9,
                visible_slot: 14,
                rmw: false,
            },
        );
        let s = d.to_string();
        assert!(s.contains("error[hazard-read]"), "{s}");
        assert!(s.contains("slot 12"), "{s}");
        assert!(s.contains("bank 3 addr 7"), "{s}");
        assert!(s.contains("slot 9"), "{s}");
    }

    #[test]
    fn kind_severities_are_fixed() {
        assert_eq!(
            DiagKind::DeadWrite {
                loc: Loc::Latch { lane: 0 },
                write_slot: 0
            }
            .severity(),
            Severity::Warning
        );
        assert_eq!(
            DiagKind::ReadBeforeInit {
                count: 1,
                sample: vec![]
            }
            .severity(),
            Severity::Info
        );
        assert_eq!(
            DiagKind::StreamUnderflow {
                consumed: 2,
                provided: 1
            }
            .severity(),
            Severity::Error
        );
    }
}
