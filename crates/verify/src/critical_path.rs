//! Critical-path extraction: the chain of dependences that bounds a
//! program's execution time.
//!
//! The MIB machine issues in order, one slot per cycle, so a program's
//! total cycle count decomposes exactly into a chain of constraints
//! ending at the last slot: each slot is bound either *sequentially* (it
//! issues one cycle after its predecessor) or by a *dependence* (its
//! issue waits for a producer's write to become architecturally visible,
//! `latency` cycles after the producer issued). Walking that chain
//! backwards from the last slot yields the **critical path**: the hops
//! where a dependence — not mere program order — determined the issue
//! cycle. A hop with positive stall cycles is a schedule defect (the
//! machine idled); a hop with zero stall is a *tight* dependence — the
//! consumer issues at the exact cycle its operand becomes visible, so no
//! reordering of the surrounding slots could shorten the program without
//! breaking the dependence. Certified (hazard-free) schedules only have
//! tight hops; the chain tells the scheduler which dependences it must
//! restructure to go faster.
//!
//! Each hop carries slot/location provenance and renders as an
//! [`Info`](crate::diag::Severity::Info) [`Diagnostic`] through
//! [`CriticalPath::to_diagnostics`], the same machinery every other
//! verifier finding uses.

use std::collections::HashMap;

use mib_core::instruction::{InstrKind, NetInstruction};
use mib_core::MibConfig;

use crate::diag::{DiagKind, Diagnostic, Loc};

/// One hop of the critical dependence chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalHop {
    /// Slot whose issue cycle the dependence determined.
    pub slot: usize,
    /// Kind of the bound instruction.
    pub kind: InstrKind,
    /// Location the dependence flows through.
    pub loc: Loc,
    /// Slot of the producing write.
    pub producer_slot: usize,
    /// Stall cycles the hop cost (0 for a tight, hazard-free dependence).
    pub stall_cycles: u64,
}

/// The chain of dependences bounding the program, in program order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CriticalPath {
    /// Predicted total cycles of the program (slots + stalls + drain),
    /// i.e. the length of the path the chain decomposes.
    pub cycles: u64,
    /// Total stall cycles along the chain (equals the program's
    /// `ExecStats::stall_cycles`: every stall lies on the critical path,
    /// because the machine issues in order).
    pub stall_cycles: u64,
    /// Dependence hops, earliest slot first. Empty when program order
    /// alone bounds the program (no dependence is tight).
    pub hops: Vec<CriticalHop>,
}

impl CriticalPath {
    /// Renders every hop as an info-severity diagnostic anchored to the
    /// bound slot, carrying the location and producer provenance.
    pub fn to_diagnostics(&self) -> Vec<Diagnostic> {
        self.hops
            .iter()
            .map(|h| {
                Diagnostic::at_slot(
                    h.slot,
                    DiagKind::CriticalPathHop {
                        loc: h.loc,
                        producer_slot: h.producer_slot,
                        stall_cycles: h.stall_cycles,
                    },
                )
            })
            .collect()
    }
}

/// Per-slot binding constraint found during the replay.
#[derive(Debug, Clone, Copy)]
struct Binding {
    loc: Loc,
    producer_slot: usize,
    stall_cycles: u64,
}

/// Extracts the critical path of `program` under the stall policy.
///
/// Programs with a width mismatch have no meaningful lane indexing; they
/// yield an empty default path (the width errors from the structural
/// checker already refute them). Address or stream faults do not affect
/// issue timing and are ignored here — the timing predictor
/// ([`crate::timing::predict`]) is the authority on fault identity.
pub fn critical_path(program: &[NetInstruction], config: &MibConfig) -> CriticalPath {
    let width = config.width;
    if program.iter().any(|i| i.width() != width) {
        return CriticalPath::default();
    }
    let latency = config.latency();
    // (bank, addr) -> (visible cycle, producer slot); same for latches.
    let mut ready: HashMap<(usize, usize), (u64, usize)> = HashMap::new();
    let mut latch_ready: Vec<Option<(u64, usize)>> = vec![None; width];
    let mut cycle: u64 = 0;
    let mut issue_cycles: Vec<u64> = Vec::with_capacity(program.len());
    let mut bindings: Vec<Option<Binding>> = Vec::with_capacity(program.len());
    let mut total_stall: u64 = 0;

    for (t, inst) in program.iter().enumerate() {
        // Same scan order as the machine's hazard check; the binding
        // dependence is the first one reaching the maximal visible cycle.
        // A dependence binds when the operand becomes visible exactly at
        // (or after) the slot's unconstrained issue cycle — i.e. it is
        // what determines the issue cycle, stalled or tight.
        let mut issue = cycle;
        let mut binding: Option<Binding> = None;
        let mut note = |loc: Loc, r: u64, producer: usize, issue: &mut u64| {
            // Strictly-greater rebinds (matching the machine's first-max-
            // wins tie rule); an exact tie binds only when nothing is
            // bound yet, which covers the tight zero-stall case r == cycle.
            if r > *issue || (r == *issue && binding.is_none()) {
                *issue = r;
                binding = Some(Binding {
                    loc,
                    producer_slot: producer,
                    stall_cycles: 0,
                });
            }
        };
        for (lane, addr) in inst.reg_read_locs() {
            if let Some(&(r, p)) = ready.get(&(lane, addr)) {
                note(Loc::Reg { bank: lane, addr }, r, p, &mut issue);
            }
        }
        for lane in inst.latch_read_lanes() {
            if let Some((r, p)) = latch_ready[lane] {
                note(Loc::Latch { lane }, r, p, &mut issue);
            }
        }
        for (lane, addr) in inst.rmw_read_locs() {
            if let Some(&(r, p)) = ready.get(&(lane, addr)) {
                note(Loc::Reg { bank: lane, addr }, r, p, &mut issue);
            }
        }
        let stall = issue - cycle;
        total_stall += stall;
        if let Some(b) = &mut binding {
            b.stall_cycles = stall;
        }
        bindings.push(binding);

        for (lane, w) in inst.write_locs() {
            if w.mode == mib_core::instruction::WriteMode::Latch {
                latch_ready[lane] = Some((issue + latency, t));
            } else {
                ready.insert((lane, w.addr), (issue + latency, t));
            }
        }
        issue_cycles.push(issue);
        cycle = issue + 1;
    }

    let cycles = if program.is_empty() {
        0
    } else {
        cycle + latency
    };

    // Walk the chain backwards from the last slot: a bound slot jumps to
    // its producer, an unbound slot to its predecessor.
    let mut hops = Vec::new();
    let mut i = program.len();
    while i > 0 {
        let slot = i - 1;
        match bindings[slot] {
            Some(b) => {
                hops.push(CriticalHop {
                    slot,
                    kind: program[slot].kind,
                    loc: b.loc,
                    producer_slot: b.producer_slot,
                    stall_cycles: b.stall_cycles,
                });
                i = b.producer_slot + 1;
            }
            None => i = slot,
        }
    }
    hops.reverse();

    CriticalPath {
        cycles,
        stall_cycles: total_stall,
        hops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use mib_core::instruction::{LaneSource, LaneWrite, WriteMode};

    fn config8() -> MibConfig {
        MibConfig {
            width: 8,
            bank_depth: 64,
            clock_hz: 1e6,
        }
    }

    fn mov(lane: usize, from: usize, to: usize) -> NetInstruction {
        let mut i = NetInstruction::nop(8);
        i.set_input(lane, LaneSource::Reg { addr: from });
        i.route(lane, lane);
        i.set_write(
            lane,
            LaneWrite {
                addr: to,
                mode: WriteMode::Store,
            },
        );
        i
    }

    #[test]
    fn empty_program_has_empty_path() {
        let cp = critical_path(&[], &config8());
        assert_eq!(cp, CriticalPath::default());
    }

    #[test]
    fn stalled_dependence_is_a_hop_with_stall_cost() {
        let cfg = config8();
        let prog = vec![mov(0, 0, 1), mov(0, 1, 2)];
        let cp = critical_path(&prog, &cfg);
        assert_eq!(cp.stall_cycles, cfg.latency() - 1);
        assert_eq!(cp.hops.len(), 1);
        let hop = cp.hops[0];
        assert_eq!(hop.slot, 1);
        assert_eq!(hop.producer_slot, 0);
        assert_eq!(hop.loc, Loc::Reg { bank: 0, addr: 1 });
        assert_eq!(hop.stall_cycles, cfg.latency() - 1);
        // cycles = issue(last) + 1 + latency = latency + 1 + latency.
        assert_eq!(cp.cycles, 2 * cfg.latency() + 1);
    }

    #[test]
    fn tight_dependence_is_a_zero_stall_hop() {
        let cfg = config8();
        let latency = cfg.latency() as usize;
        let mut prog = vec![mov(0, 0, 1)];
        prog.extend((0..latency - 1).map(|_| NetInstruction::nop(8)));
        prog.push(mov(0, 1, 2));
        let cp = critical_path(&prog, &cfg);
        assert_eq!(cp.stall_cycles, 0);
        assert_eq!(cp.hops.len(), 1);
        assert_eq!(cp.hops[0].stall_cycles, 0);
        assert_eq!(cp.hops[0].producer_slot, 0);
        assert_eq!(cp.cycles, prog.len() as u64 + cfg.latency());
    }

    #[test]
    fn slack_dependence_is_not_on_the_path() {
        let cfg = config8();
        let latency = cfg.latency() as usize;
        // One extra nop of slack: the consumer is bound by program order,
        // not the dependence.
        let mut prog = vec![mov(0, 0, 1)];
        prog.extend((0..latency).map(|_| NetInstruction::nop(8)));
        prog.push(mov(0, 1, 2));
        let cp = critical_path(&prog, &cfg);
        assert!(cp.hops.is_empty(), "{:?}", cp.hops);
        assert_eq!(cp.stall_cycles, 0);
    }

    #[test]
    fn hops_render_as_info_diagnostics_with_provenance() {
        let cfg = config8();
        let prog = vec![mov(0, 0, 1), mov(0, 1, 2)];
        let diags = critical_path(&prog, &cfg).to_diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Info);
        assert_eq!(diags[0].slot, Some(1));
        let s = diags[0].to_string();
        assert!(s.contains("critical-path"), "{s}");
        assert!(s.contains("bank 0 addr 1"), "{s}");
        assert!(s.contains("slot 0"), "{s}");
    }

    #[test]
    fn width_mismatch_yields_default_path() {
        let cp = critical_path(&[NetInstruction::nop(4)], &config8());
        assert_eq!(cp, CriticalPath::default());
    }
}
