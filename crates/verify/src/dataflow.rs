//! Def-use / liveness dataflow over the register banks and broadcast
//! latches.
//!
//! The sweep mirrors [`mib_core::machine::Machine::run`] under the strict
//! hazard policy exactly: a clean schedule issues one slot per cycle, so
//! slot indices *are* issue cycles, and a read at slot `t` of a location
//! last written at slot `w` is a hazard iff `t < w + latency`. Within a
//! slot, all reads (lane inputs, latch operands, read-modify-write
//! writebacks) happen before that slot's writes are recorded — the same
//! order the machine checks them in.

use std::collections::{BTreeMap, HashSet};

use mib_core::instruction::{NetInstruction, WriteMode};
use mib_core::MibConfig;

use crate::diag::{DiagKind, Diagnostic, Loc};
use crate::report::{BankPressure, PressureReport};

/// How many live-in locations the `ReadBeforeInit` summary lists verbatim.
const LIVE_IN_SAMPLE: usize = 4;

/// One write generation of a location: a value born at `write_slot`, dead
/// at its last read before the next overwrite (or live-out if never
/// overwritten).
#[derive(Debug, Clone, Copy)]
struct Gen {
    write_slot: usize,
    last_read: Option<usize>,
}

/// Per-location def-use history accumulated by the sweep.
#[derive(Debug, Default)]
struct LocHistory {
    /// First and last read before any write in this program (live-in
    /// uses): the first anchors the `ReadBeforeInit` provenance, the last
    /// bounds the live-in value's liveness interval for the pressure
    /// report.
    pre_write_reads: Option<(usize, usize)>,
    gens: Vec<Gen>,
}

/// Runs the def-use/liveness analysis, returning diagnostics (hazard
/// reads, dead writes, double writes, the live-in summary) and the
/// register-pressure report.
pub fn analyze(
    program: &[NetInstruction],
    config: &MibConfig,
) -> (Vec<Diagnostic>, PressureReport) {
    let latency = config.latency() as usize;
    let mut diags = Vec::new();
    // BTreeMap keeps reports and live-in samples deterministic.
    let mut hist: BTreeMap<Loc, LocHistory> = BTreeMap::new();

    for (t, inst) in program.iter().enumerate() {
        let mut read = |loc: Loc, rmw: bool, diags: &mut Vec<Diagnostic>| {
            let h = hist.entry(loc).or_default();
            match h.gens.last_mut() {
                Some(gen) => {
                    if t < gen.write_slot + latency {
                        diags.push(Diagnostic::at_slot(
                            t,
                            DiagKind::HazardRead {
                                loc,
                                write_slot: gen.write_slot,
                                visible_slot: gen.write_slot + latency,
                                rmw,
                            },
                        ));
                    }
                    gen.last_read = Some(t);
                }
                None => match &mut h.pre_write_reads {
                    Some((_, last)) => *last = t,
                    None => h.pre_write_reads = Some((t, t)),
                },
            }
        };
        // Read phase — the order the machine checks hazards in.
        for (lane, addr) in inst.reg_read_locs() {
            read(Loc::Reg { bank: lane, addr }, false, &mut diags);
        }
        for lane in inst.latch_read_lanes() {
            read(Loc::Latch { lane }, false, &mut diags);
        }
        for (lane, addr) in inst.rmw_read_locs() {
            read(Loc::Reg { bank: lane, addr }, true, &mut diags);
        }

        // Write phase.
        let mut written_this_slot: HashSet<Loc> = HashSet::new();
        for (lane, w) in inst.write_locs() {
            let loc = if w.mode == WriteMode::Latch {
                Loc::Latch { lane }
            } else {
                Loc::Reg {
                    bank: lane,
                    addr: w.addr,
                }
            };
            if !written_this_slot.insert(loc) {
                // Unreachable through NetInstruction's one-write-port-per-
                // lane invariant; kept as defense in depth.
                diags.push(Diagnostic::at_slot(t, DiagKind::DoubleWrite { loc }));
            }
            let h = hist.entry(loc).or_default();
            if let Some(prev) = h.gens.last() {
                // A generation overwritten without any read (including the
                // implicit RMW read handled above) was wasted work — and
                // stays wasted under iterated program replay, since an
                // intermediate generation can never be the latest write at
                // a read point.
                if prev.last_read.is_none() {
                    diags.push(Diagnostic::at_slot(
                        prev.write_slot,
                        DiagKind::DeadWrite {
                            loc,
                            write_slot: prev.write_slot,
                        },
                    ));
                }
            }
            h.gens.push(Gen {
                write_slot: t,
                last_read: None,
            });
        }
    }

    // Live-in summary: one Info diagnostic listing locations read before
    // any write, each with its first-read slot as provenance. Registers
    // persist across programs (and start zeroed), so this is legitimate —
    // but the caller must guarantee it.
    let live_in: Vec<(Loc, usize)> = hist
        .iter()
        .filter_map(|(&loc, h)| Some((loc, h.pre_write_reads?.0)))
        .collect();
    if !live_in.is_empty() {
        diags.push(Diagnostic::global(DiagKind::ReadBeforeInit {
            count: live_in.len(),
            sample: live_in.iter().copied().take(LIVE_IN_SAMPLE).collect(),
        }));
    }

    let pressure = pressure_report(program.len(), config, &hist);
    (diags, pressure)
}

/// Builds the per-bank register-pressure profile from the def-use
/// histories: each generation is live from its write to its last read
/// before overwrite; the final generation (and any never-overwritten
/// live-in value) is conservatively live to the end of the program, since
/// a later program may still read it.
fn pressure_report(
    slots: usize,
    config: &MibConfig,
    hist: &BTreeMap<Loc, LocHistory>,
) -> PressureReport {
    let mut report = PressureReport {
        banks: vec![BankPressure::default(); config.width],
        bank_depth: config.bank_depth,
    };
    if slots == 0 {
        return report;
    }
    let last = slots - 1;
    // Per-bank difference arrays over slots, plus the touched-address sets.
    let mut diff = vec![vec![0i64; slots + 1]; config.width];
    let mut touched: Vec<HashSet<usize>> = vec![HashSet::new(); config.width];
    let mut mark = |bank: usize, start: usize, end: usize| {
        diff[bank][start] += 1;
        diff[bank][end + 1] -= 1;
    };
    for (loc, h) in hist {
        let Loc::Reg { bank, addr } = *loc else {
            continue; // latches are not register-bank capacity
        };
        touched[bank].insert(addr);
        // Live intervals of this address, in slot order.
        let mut intervals: Vec<(usize, usize)> = Vec::new();
        if let Some((_, r)) = h.pre_write_reads {
            intervals.push((0, if h.gens.is_empty() { last } else { r }));
        }
        for (i, gen) in h.gens.iter().enumerate() {
            let end = if i + 1 == h.gens.len() {
                last
            } else {
                gen.last_read.unwrap_or(gen.write_slot)
            };
            intervals.push((gen.write_slot, end.max(gen.write_slot)));
        }
        // An address holds one word: clamp each interval short of the next
        // generation's birth so a same-slot read+overwrite is not counted
        // as two live values.
        for i in 0..intervals.len() {
            let (start, mut end) = intervals[i];
            if let Some(&(next_start, _)) = intervals.get(i + 1) {
                end = end.min(next_start.saturating_sub(1));
            }
            if end >= start {
                mark(bank, start, end);
            }
        }
    }
    for (bank, bank_diff) in diff.iter().enumerate() {
        let mut live = 0i64;
        let mut peak = 0i64;
        let mut peak_slot = 0;
        for (slot, d) in bank_diff.iter().take(slots).enumerate() {
            live += d;
            if live > peak {
                peak = live;
                peak_slot = slot;
            }
        }
        report.banks[bank] = BankPressure {
            peak_live: peak as usize,
            peak_slot,
            touched: touched[bank].len(),
        };
    }
    report
}
