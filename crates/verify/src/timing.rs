//! Static timing analysis: exact cycle prediction without execution.
//!
//! The MIB machine is fully deterministic and its issue rules depend only
//! on information that is *statically* present in the instruction
//! encodings — which `(bank, addr)` locations a slot reads, which lanes
//! read their broadcast latch, which writebacks are read-modify-write, how
//! many HBM words a slot consumes, and the fixed pipeline latency
//! `log₂C + 2` from [`MibConfig::latency`]. [`predict`] replays exactly
//! the issue rules of [`Machine::run`](mib_core::machine::Machine::run) —
//! the per-location ready map, the latch-ready array, the in-order
//! single-slot-per-cycle issue, the stall (or strict rejection) on a
//! pending write, the streaming-window merge and the final pipeline
//! drain — while skipping all functional evaluation. The result is a
//! **bitwise** prediction of the run:
//!
//! * the full [`ExecStats`] (cycles, slots, stalls, FLOPs, HBM words,
//!   register traffic, per-kind slot counts), and
//! * the full [`Timeline`] (per-kind issue/stall buckets, drain, stage
//!   occupancy, merged HBM windows),
//!
//! equal field-for-field to what `Machine::run_with_timeline` returns —
//! or, when the machine would reject the program, the **same**
//! [`MibError`] value it would reject it with, detected at the same
//! instruction in the same check order. This exactness is proven
//! differentially over the whole benchmark program suite and under
//! proptest mutation (`tests/static_timing.rs`,
//! `tests/proptest_timing.rs`).
//!
//! Because no register values are computed, no `f64` lane vectors are
//! allocated and no stream words are materialized, prediction is an order
//! of magnitude cheaper than simulation — cheap enough to run on every
//! compiled schedule as the compiler's cost oracle
//! (`mib_compiler::cost::StaticCost`).

use std::collections::HashMap;

use mib_core::instruction::{NetInstruction, OutMul, WriteMode};
use mib_core::machine::HazardPolicy;
use mib_core::stats::ExecStats;
use mib_core::timeline::Timeline;
use mib_core::{MibConfig, MibError};

/// The statically predicted outcome of executing a program: the exact
/// statistics and cycle-attributed timeline the machine would produce.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticTiming {
    /// Predicted execution statistics, bitwise equal to the
    /// [`ExecStats`] of a real run.
    pub stats: ExecStats,
    /// Predicted cycle attribution, bitwise equal to the [`Timeline`]
    /// of a real `run_with_timeline`.
    pub timeline: Timeline,
    /// Predicted issue cycle of every slot, in program order (the basis
    /// of critical-path extraction and slack reporting).
    pub issue_cycles: Vec<u64>,
}

impl StaticTiming {
    /// Predicted total cycles (`stats.cycles`).
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }
}

/// Statically predicts the exact timing of `program` on a machine with
/// `config`, fed by an HBM stream of `hbm_words` words, under the given
/// hazard policy.
///
/// # Errors
///
/// Returns precisely the [`MibError`] the machine's execution would
/// return: [`MibError::WidthMismatch`], [`MibError::DataHazard`] (strict
/// policy only), [`MibError::AddressOutOfRange`] or
/// [`MibError::StreamExhausted`] — same variant, same payload, detected
/// in the machine's own check order.
pub fn predict(
    program: &[NetInstruction],
    hbm_words: usize,
    config: &MibConfig,
    policy: HazardPolicy,
) -> Result<StaticTiming, MibError> {
    let width = config.width;
    let latency = config.latency();
    let mut stats = ExecStats::default();
    let mut timeline = Timeline::default();
    let mut issue_cycles = Vec::with_capacity(program.len());
    // (bank, addr) -> cycle at which the pending write becomes visible —
    // the same ready map the machine keeps.
    let mut ready: HashMap<(usize, usize), u64> = HashMap::new();
    let mut latch_ready = vec![0u64; width];
    let mut cycle: u64 = 0;
    // Stream cursor: the machine reads words positionally, so exhaustion
    // is a pure counting question.
    let mut streamed: usize = 0;

    for (idx, inst) in program.iter().enumerate() {
        if inst.width() != width {
            return Err(MibError::WidthMismatch {
                instruction: inst.width(),
                machine: width,
            });
        }

        // Issue rule, replayed in the machine's exact scan order (per
        // lane: register read then latch read; then RMW writebacks) so
        // the *binding* hazard — first location to reach the maximal
        // ready cycle — matches the strict-mode error provenance.
        let mut issue = cycle;
        let mut binding_hazard: Option<(usize, usize, bool, u64)> = None;
        let mut note_hazard = |bank: usize, addr: usize, latch: bool, r: u64, issue: &mut u64| {
            if r > *issue {
                *issue = r;
                binding_hazard = Some((bank, addr, latch, r));
            }
        };
        for (lane, input) in inst.inputs().iter().enumerate() {
            let Some(src) = input else { continue };
            if let Some(addr) = src.reg_addr() {
                if let Some(&r) = ready.get(&(lane, addr)) {
                    note_hazard(lane, addr, false, r, &mut issue);
                }
            }
            if src.uses_latch() && latch_ready[lane] > issue {
                let r = latch_ready[lane];
                note_hazard(lane, 0, true, r, &mut issue);
            }
        }
        for (lane, write) in inst.writes().iter().enumerate() {
            let Some(w) = write else { continue };
            if w.mode.is_rmw() {
                if let Some(&r) = ready.get(&(lane, w.addr)) {
                    note_hazard(lane, w.addr, false, r, &mut issue);
                }
            }
        }
        if issue > cycle {
            if policy == HazardPolicy::Strict {
                let (bank, addr, latch, r) =
                    binding_hazard.expect("issue moved implies a recorded hazard");
                return Err(MibError::DataHazard {
                    cycle,
                    instruction: idx,
                    bank,
                    addr,
                    latch,
                    ready: r,
                });
            }
            stats.stall_cycles += issue - cycle;
        }

        // Fault replay of the functional stage, in evaluation order, so a
        // failing program's predicted error matches the machine's: per
        // lane, the register read happens before the stream word; output
        // multipliers stream after the whole input stage; writebacks
        // bounds-check last.
        let hbm_words_before = stats.hbm_words;
        for (lane, input) in inst.inputs().iter().enumerate() {
            let Some(src) = input else { continue };
            if let Some(addr) = src.reg_addr() {
                check_addr(lane, addr, config)?;
                stats.reg_reads += 1;
            }
            // Latch reads touch no addressable storage: no fault. The
            // stream word (if any) is consumed after the register read,
            // matching the machine's evaluation order within the lane.
            if src.uses_stream() {
                take_word(&mut streamed, hbm_words, idx, &mut stats)?;
            }
        }
        for om in inst.out_muls() {
            if matches!(om, OutMul::MulStream { .. }) {
                take_word(&mut streamed, hbm_words, idx, &mut stats)?;
            }
        }
        for (lane, w) in inst.write_locs() {
            if w.mode != WriteMode::Latch {
                check_addr(lane, w.addr, config)?;
            }
            stats.reg_writes += 1;
        }
        stats.flops += inst.flop_count();

        // Writeback visibility, identical to the machine's bookkeeping.
        for (lane, w) in inst.write_locs() {
            if w.mode == WriteMode::Latch {
                latch_ready[lane] = issue + latency;
            } else {
                ready.insert((lane, w.addr), issue + latency);
            }
        }

        stats.slots += 1;
        stats.busy_nodes += inst.busy_nodes() as u64;
        stats.count_kind(inst.kind);
        timeline.record_slot(
            inst.kind,
            issue,
            issue - cycle,
            &inst.stage_occupancy(),
            stats.hbm_words - hbm_words_before,
        );
        issue_cycles.push(issue);
        cycle = issue + 1;
    }

    let drain = if stats.slots > 0 { latency } else { 0 };
    stats.cycles = cycle + drain;
    timeline.drain_cycles = drain;
    Ok(StaticTiming {
        stats,
        timeline,
        issue_cycles,
    })
}

/// Mirrors `RegisterFiles::check`: a lane index is always in range (the
/// width check above guarantees it), so only the address can fault.
fn check_addr(bank: usize, addr: usize, config: &MibConfig) -> Result<(), MibError> {
    if addr >= config.bank_depth {
        return Err(MibError::AddressOutOfRange {
            bank,
            addr,
            depth: config.bank_depth,
        });
    }
    Ok(())
}

/// Mirrors `Machine::stream_word`: positional consumption, exhaustion at
/// the instruction requesting the missing word.
fn take_word(
    streamed: &mut usize,
    hbm_words: usize,
    instruction: usize,
    stats: &mut ExecStats,
) -> Result<(), MibError> {
    if *streamed >= hbm_words {
        return Err(MibError::StreamExhausted { instruction });
    }
    *streamed += 1;
    stats.hbm_words += 1;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mib_core::hbm::HbmStream;
    use mib_core::instruction::{InstrKind, LaneSource, LaneWrite};
    use mib_core::machine::Machine;

    fn config8() -> MibConfig {
        MibConfig {
            width: 8,
            bank_depth: 64,
            clock_hz: 1e6,
        }
    }

    fn mov(lane: usize, from: usize, to: usize) -> NetInstruction {
        let mut i = NetInstruction::nop(8);
        i.set_input(lane, LaneSource::Reg { addr: from });
        i.route(lane, lane);
        i.set_write(
            lane,
            LaneWrite {
                addr: to,
                mode: WriteMode::Store,
            },
        );
        i
    }

    /// Runs both the predictor and the machine under `policy` and asserts
    /// exact agreement (stats + timeline, or the identical error).
    fn assert_exact(program: &[NetInstruction], hbm: &[f64], cfg: &MibConfig) {
        for policy in [HazardPolicy::Stall, HazardPolicy::Strict] {
            let predicted = predict(program, hbm.len(), cfg, policy);
            let mut m = Machine::new(*cfg);
            let simulated = m.run_with_timeline(program, &mut HbmStream::new(hbm.to_vec()), policy);
            match (predicted, simulated) {
                (Ok(p), Ok((stats, tl))) => {
                    assert_eq!(p.stats, stats, "stats mismatch under {policy:?}");
                    assert_eq!(p.timeline, tl, "timeline mismatch under {policy:?}");
                }
                (Err(pe), Err(me)) => assert_eq!(pe, me, "error mismatch under {policy:?}"),
                (p, s) => panic!("verdict mismatch under {policy:?}: {p:?} vs {s:?}"),
            }
        }
    }

    #[test]
    fn empty_program_predicts_zero_cycles() {
        let t = predict(&[], 0, &config8(), HazardPolicy::Strict).unwrap();
        assert_eq!(t.cycles(), 0);
        assert_eq!(t.timeline.total_cycles(), 0);
        assert!(t.issue_cycles.is_empty());
    }

    #[test]
    fn hazard_free_chain_predicts_slots_plus_drain() {
        let cfg = config8();
        let latency = cfg.latency() as usize;
        let mut prog = vec![mov(0, 0, 1)];
        prog.extend((0..latency - 1).map(|_| NetInstruction::nop(8)));
        prog.push(mov(0, 1, 2));
        let t = predict(&prog, 0, &cfg, HazardPolicy::Strict).unwrap();
        assert_eq!(t.cycles(), prog.len() as u64 + cfg.latency());
        assert_eq!(t.stats.stall_cycles, 0);
        assert_exact(&prog, &[], &cfg);
    }

    #[test]
    fn stalling_pair_matches_machine_exactly() {
        let cfg = config8();
        let prog = vec![mov(0, 0, 1), mov(0, 1, 2)];
        let t = predict(&prog, 0, &cfg, HazardPolicy::Stall).unwrap();
        assert_eq!(t.stats.stall_cycles, cfg.latency() - 1);
        assert_eq!(
            t.timeline.stall_cycles_by_kind[InstrKind::Nop.index()],
            cfg.latency() - 1
        );
        assert_exact(&prog, &[], &cfg);
        // Strict policy predicts the machine's exact DataHazard payload.
        let err = predict(&prog, 0, &cfg, HazardPolicy::Strict).unwrap_err();
        assert_eq!(
            err,
            MibError::DataHazard {
                cycle: 1,
                instruction: 1,
                bank: 0,
                addr: 1,
                latch: false,
                ready: cfg.latency(),
            }
        );
    }

    #[test]
    fn latch_hazard_and_rmw_hazard_predicted() {
        let cfg = config8();
        // Broadcast into latches, consume immediately.
        let mut bcast = NetInstruction::nop(8);
        bcast.set_input(1, LaneSource::Reg { addr: 0 });
        for dst in 0..8 {
            bcast.route(1, dst);
        }
        for lane in 0..8 {
            bcast.set_write(
                lane,
                LaneWrite {
                    addr: 0,
                    mode: WriteMode::Latch,
                },
            );
        }
        let mut elim = NetInstruction::nop(8);
        elim.set_input(
            0,
            LaneSource::RegTimesLatch {
                addr: 1,
                negate: true,
            },
        );
        elim.route(0, 0);
        elim.set_write(
            0,
            LaneWrite {
                addr: 2,
                mode: WriteMode::Add,
            },
        );
        assert_exact(&[bcast, elim], &[], &cfg);
    }

    #[test]
    fn stream_exhaustion_predicted_at_the_same_instruction() {
        let cfg = config8();
        let mut i = NetInstruction::nop(8);
        i.set_input(0, LaneSource::Stream);
        i.route(0, 0);
        i.set_write(
            0,
            LaneWrite {
                addr: 0,
                mode: WriteMode::Store,
            },
        );
        let prog = vec![i.clone(), i];
        // One word for two streaming slots: instruction 1 exhausts.
        let err = predict(&prog, 1, &cfg, HazardPolicy::Stall).unwrap_err();
        assert_eq!(err, MibError::StreamExhausted { instruction: 1 });
        assert_exact(&prog, &[1.0], &cfg);
    }

    #[test]
    fn width_and_address_faults_predicted() {
        let cfg = config8();
        assert_exact(&[NetInstruction::nop(4)], &[], &cfg);
        assert_exact(&[mov(2, 64, 0)], &[], &cfg);
        assert_exact(&[mov(2, 0, 64)], &[], &cfg);
    }

    #[test]
    fn hbm_windows_merge_like_the_machine() {
        let cfg = config8();
        let mut load = NetInstruction::nop(8);
        load.set_input(3, LaneSource::Stream);
        load.route(3, 3);
        load.set_write(
            3,
            LaneWrite {
                addr: 1,
                mode: WriteMode::Store,
            },
        );
        // Two contiguous streaming slots, a gap, then one more.
        let prog = vec![
            load.clone(),
            load.clone(),
            NetInstruction::nop(8),
            load.clone(),
        ];
        let t = predict(&prog, 3, &cfg, HazardPolicy::Strict).unwrap();
        assert_eq!(t.timeline.hbm_windows.len(), 2);
        assert_exact(&prog, &[1.0, 2.0, 3.0], &cfg);
    }
}
