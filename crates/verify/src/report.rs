//! Verification reports: the diagnostics of one analyzed program plus its
//! register-pressure profile, and the compact [`Certificate`] summary that
//! higher layers (solver profiles, benchmark tables) carry around.

use std::fmt;

use crate::diag::{Diagnostic, Severity};

/// Register-pressure profile of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BankPressure {
    /// Peak number of simultaneously live values in the bank.
    pub peak_live: usize,
    /// First slot at which the peak is reached.
    pub peak_slot: usize,
    /// Distinct addresses the program touches in the bank.
    pub touched: usize,
}

/// Register-pressure report: peak live values per bank against the
/// configured bank depth, in the spirit of `ExecStats`' utilization
/// counters but computed statically.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PressureReport {
    /// Per-bank profiles, indexed by bank (= lane).
    pub banks: Vec<BankPressure>,
    /// Configured words per bank.
    pub bank_depth: usize,
}

impl PressureReport {
    /// The highest per-bank peak (0 for an empty program).
    pub fn peak_live(&self) -> usize {
        self.banks.iter().map(|b| b.peak_live).max().unwrap_or(0)
    }

    /// Peak live values as a fraction of bank depth (0 when depth is 0).
    pub fn occupancy(&self) -> f64 {
        if self.bank_depth == 0 {
            return 0.0;
        }
        self.peak_live() as f64 / self.bank_depth as f64
    }
}

impl fmt::Display for PressureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "peak live {} / depth {} ({:.2}%)",
            self.peak_live(),
            self.bank_depth,
            100.0 * self.occupancy()
        )
    }
}

/// Static timing facts of one analyzed program, from the exact cycle
/// predictor (`timing::predict`) and the critical-path extractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingSummary {
    /// Predicted total cycles under the stall policy — provably equal to
    /// `Machine::run` (a certified program stalls zero cycles, so this is
    /// also its strict-policy cycle count).
    pub predicted_cycles: u64,
    /// Predicted hazard-stall cycles (0 for a certified program).
    pub stall_cycles: u64,
    /// Length in cycles of the critical dependence chain's program (the
    /// same total, decomposed along the chain).
    pub critical_path_cycles: u64,
    /// Number of dependence hops on the critical path.
    pub critical_path_hops: usize,
}

impl fmt::Display for TimingSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "predicted {} cycle(s) ({} stall); critical path: {} hop(s)",
            self.predicted_cycles, self.stall_cycles, self.critical_path_hops
        )
    }
}

/// The result of statically analyzing one program.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Program name (e.g. `"iteration"`).
    pub name: String,
    /// Issue slots analyzed.
    pub slots: usize,
    /// All findings, ordered by (severity, slot, loc), most severe first.
    pub diagnostics: Vec<Diagnostic>,
    /// Static register-pressure profile.
    pub pressure: PressureReport,
    /// Exact predicted timing, when the program is statically runnable
    /// (`None` when a width/address/stream fault makes timing moot).
    pub timing: Option<TimingSummary>,
}

impl Report {
    /// Number of diagnostics at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Whether the program is certified: no error-severity finding, i.e.
    /// the machine's strict execution provably cannot reject it.
    pub fn is_certified(&self) -> bool {
        self.count(Severity::Error) == 0
    }

    /// Compact summary for profiles and tables.
    pub fn certificate(&self) -> Certificate {
        Certificate {
            program: self.name.clone(),
            slots: self.slots,
            errors: self.count(Severity::Error),
            warnings: self.count(Severity::Warning),
            infos: self.count(Severity::Info),
            peak_live: self.pressure.peak_live(),
            bank_depth: self.pressure.bank_depth,
            predicted_cycles: self.timing.map(|t| t.predicted_cycles),
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] {} slot(s), {} error(s), {} warning(s), {} info(s); {}",
            self.name,
            self.slots,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
            self.pressure
        )?;
        if let Some(timing) = &self.timing {
            writeln!(f, "  {timing}")?;
        }
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// A compact, cloneable summary of a [`Report`] — what a solve profile or
/// a benchmark table records per program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Program name.
    pub program: String,
    /// Issue slots analyzed.
    pub slots: usize,
    /// Error-severity findings (0 for a certified program).
    pub errors: usize,
    /// Warning-severity findings.
    pub warnings: usize,
    /// Info-severity findings.
    pub infos: usize,
    /// Peak live values over all banks.
    pub peak_live: usize,
    /// Configured bank depth.
    pub bank_depth: usize,
    /// Statically predicted execution cycles, when the program is
    /// runnable (the compiler's `StaticCost` oracle stores this).
    pub predicted_cycles: Option<u64>,
}

impl Certificate {
    /// Whether the summarized program was certified.
    pub fn is_certified(&self) -> bool {
        self.errors == 0
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({} slots, {}E/{}W/{}I, peak live {}/{})",
            self.program,
            if self.is_certified() {
                "certified"
            } else {
                "REJECTED"
            },
            self.slots,
            self.errors,
            self.warnings,
            self.infos,
            self.peak_live,
            self.bank_depth
        )?;
        if let Some(cycles) = self.predicted_cycles {
            write!(f, " ~{cycles} cyc")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{DiagKind, Loc};

    fn report_with(diags: Vec<Diagnostic>) -> Report {
        Report {
            name: "t".into(),
            slots: 3,
            diagnostics: diags,
            pressure: PressureReport {
                banks: vec![
                    BankPressure {
                        peak_live: 2,
                        peak_slot: 1,
                        touched: 4,
                    },
                    BankPressure::default(),
                ],
                bank_depth: 16,
            },
            timing: Some(TimingSummary {
                predicted_cycles: 8,
                stall_cycles: 0,
                critical_path_cycles: 8,
                critical_path_hops: 1,
            }),
        }
    }

    #[test]
    fn certification_depends_on_errors_only() {
        let clean = report_with(vec![Diagnostic::global(DiagKind::ReadBeforeInit {
            count: 1,
            sample: vec![(Loc::Reg { bank: 0, addr: 0 }, 2)],
        })]);
        assert!(clean.is_certified());
        let bad = report_with(vec![Diagnostic::global(DiagKind::StreamUnderflow {
            consumed: 2,
            provided: 0,
        })]);
        assert!(!bad.is_certified());
        assert_eq!(bad.errors().count(), 1);
    }

    #[test]
    fn certificate_summarizes() {
        let r = report_with(vec![
            Diagnostic::at_slot(
                0,
                DiagKind::DeadWrite {
                    loc: Loc::Reg { bank: 1, addr: 2 },
                    write_slot: 0,
                },
            ),
            Diagnostic::global(DiagKind::ReadBeforeInit {
                count: 2,
                sample: vec![],
            }),
        ]);
        let c = r.certificate();
        assert_eq!((c.errors, c.warnings, c.infos), (0, 1, 1));
        assert_eq!(c.peak_live, 2);
        assert_eq!(c.predicted_cycles, Some(8));
        assert!(c.is_certified());
        let s = c.to_string();
        assert!(s.contains("certified"), "{s}");
        assert!(s.contains("~8 cyc"), "{s}");
    }

    #[test]
    fn pressure_peak_and_occupancy() {
        let r = report_with(vec![]);
        assert_eq!(r.pressure.peak_live(), 2);
        assert!((r.pressure.occupancy() - 2.0 / 16.0).abs() < 1e-12);
        assert_eq!(PressureReport::default().peak_live(), 0);
        assert_eq!(PressureReport::default().occupancy(), 0.0);
    }
}
