//! Reference-platform models for the cross-platform evaluation.
//!
//! The paper compares its FPGA prototypes against a CPU (i7-10700KF running
//! OSQP with MKL or the built-in QDLDL), a GPU (RTX 3070 running cuOSQP /
//! cuSparse) and the CPU+FPGA RSQP system. We do not have that hardware;
//! following the substitution plan in DESIGN.md §1, this crate provides
//! **analytic timing/energy/jitter models** parameterized by the paper's
//! Table II specifications and Section V power measurements. The models
//! capture the *mechanisms* the paper identifies:
//!
//! * CPUs run sparse kernels far below peak (memory-bound irregular
//!   access) but have negligible per-iteration overhead;
//! * GPUs add kernel-launch and device↔host synchronization costs to every
//!   ADMM step ("the GPU backend sends scalar values from the GPU to the
//!   CPU multiple times per loop step"), so they only win on large
//!   problems;
//! * RSQP ships the KKT solution vector across PCIe every iteration;
//! * the MIB machine is cycle-deterministic, so its jitter is limited to
//!   host-side invocation noise.
//!
//! The work quantities come from the reference solver's exact profile
//! ([`WorkSummary`]); the MIB platform's own time comes from the compiled
//! schedules in `mib-compiler` and is *not* modelled here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod jitter;
pub mod models;
pub mod resources;
pub mod specs;

pub use models::{CpuModel, CpuVariant, GpuModel, PlatformModel, RsqpModel, WorkSummary};
pub use specs::PlatformSpec;
