//! Runtime-jitter models (Section V.D of the paper).
//!
//! The paper quantifies timing determinism as the standard deviation of
//! solve time normalized by the mean, over repeated runs of the MPC
//! benchmark. Each platform's jitter arises from a different mechanism:
//! OS scheduling noise (CPU), driver/boost-clock variance (GPU), PCIe
//! round trips (RSQP), and — for the MIB machine — only host invocation,
//! since execution itself is cycle-deterministic.
//!
//! Runtimes are sampled as `t·exp(σ·Z + shift)` with `Z ~ N(0,1)` (a
//! lognormal multiplicative noise floored at the deterministic minimum),
//! which matches the long-tailed distributions interference produces.

use rand::Rng;

use crate::models::PlatformModel;

/// Samples `runs` runtimes for a platform around the mean `seconds`.
pub fn sample_runtimes(
    model: &dyn PlatformModel,
    seconds: f64,
    runs: usize,
    rng: &mut impl Rng,
) -> Vec<f64> {
    let cv = model.jitter_cv();
    // Lognormal with sd ≈ cv·mean for small cv: sigma = sqrt(ln(1+cv²)).
    let sigma = (1.0 + cv * cv).ln().sqrt();
    let mu = -0.5 * sigma * sigma; // keep the mean at `seconds`
    (0..runs)
        .map(|_| {
            let z = standard_normal(rng);
            // Interference only ever *adds* time: floor at 97% of the mean
            // (pipeline-deterministic part).
            (seconds * (mu + sigma * z).exp()).max(seconds * 0.97)
        })
        .collect()
}

/// Normalized jitter: `std(runtimes) / mean(runtimes)` — the paper's
/// Figure 11 metric.
pub fn normalized_jitter(runtimes: &[f64]) -> f64 {
    if runtimes.len() < 2 {
        return 0.0;
    }
    let n = runtimes.len() as f64;
    let mean = runtimes.iter().sum::<f64>() / n;
    let var = runtimes
        .iter()
        .map(|&t| (t - mean) * (t - mean))
        .sum::<f64>()
        / (n - 1.0);
    var.sqrt() / mean
}

/// Box–Muller standard normal.
fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{CpuModel, CpuVariant, MibPlatform};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_jitter_tracks_model_cv() {
        let mut rng = StdRng::seed_from_u64(1);
        let cpu = CpuModel::new(CpuVariant::Mkl);
        let samples = sample_runtimes(&cpu, 0.01, 4000, &mut rng);
        let j = normalized_jitter(&samples);
        assert!(
            (j - cpu.jitter_cv()).abs() < 0.35 * cpu.jitter_cv(),
            "sampled cv {j} far from model {}",
            cpu.jitter_cv()
        );
    }

    #[test]
    fn mib_is_much_more_deterministic_than_cpu() {
        let mut rng = StdRng::seed_from_u64(2);
        let mib = MibPlatform {
            name: "MIB C=32",
            seconds: 1e-3,
        };
        let cpu = CpuModel::new(CpuVariant::Mkl);
        let jm = normalized_jitter(&sample_runtimes(&mib, 1e-3, 2000, &mut rng));
        let jc = normalized_jitter(&sample_runtimes(&cpu, 1e-3, 2000, &mut rng));
        assert!(jc / jm > 5.0, "cpu {jc} vs mib {jm}");
    }

    #[test]
    fn jitter_of_constant_series_is_zero() {
        assert_eq!(normalized_jitter(&[1.0, 1.0, 1.0]), 0.0);
        assert_eq!(normalized_jitter(&[1.0]), 0.0);
    }
}
