//! Energy-efficiency accounting (Section V.C of the paper).
//!
//! The paper reports *problems solved per second per watt* as the
//! normalized efficiency metric, measured once with device power alone and
//! once with total system power (host idle power included, since the FPGA
//! and GPU need a host CPU to feed them).

use crate::models::PlatformModel;

/// Energy and efficiency figures for one solve on one platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Solve time in seconds.
    pub seconds: f64,
    /// Device energy in joules (load power × time).
    pub device_joules: f64,
    /// System energy in joules (adds host idle power).
    pub system_joules: f64,
    /// Problems per second per watt, device power.
    pub device_efficiency: f64,
    /// Problems per second per watt, system power.
    pub system_efficiency: f64,
}

/// Computes the energy report for a platform given its solve time.
pub fn report(model: &dyn PlatformModel, seconds: f64) -> EnergyReport {
    let device_power = model.load_power();
    let system_power = device_power + model.host_idle_power();
    let device_joules = device_power * seconds;
    let system_joules = system_power * seconds;
    EnergyReport {
        seconds,
        device_joules,
        system_joules,
        device_efficiency: 1.0 / device_joules,
        system_efficiency: 1.0 / system_joules,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{CpuModel, CpuVariant, GpuModel, MibPlatform};

    #[test]
    fn efficiency_is_inverse_energy() {
        let cpu = CpuModel::new(CpuVariant::Mkl);
        let r = report(&cpu, 2.0);
        assert_eq!(r.device_joules, 98.0);
        assert!((r.device_efficiency - 1.0 / 98.0).abs() < 1e-12);
        // CPU hosts itself: no extra idle power.
        assert_eq!(r.system_joules, r.device_joules);
    }

    #[test]
    fn accelerators_charge_host_idle_for_system_energy() {
        let gpu = GpuModel::new();
        let r = report(&gpu, 1.0);
        assert_eq!(r.device_joules, 65.0);
        assert_eq!(r.system_joules, 65.0 + 22.0);
        let mib = MibPlatform {
            name: "MIB C=32",
            seconds: 1.0,
        };
        let r = report(&mib, 1.0);
        assert_eq!(r.device_joules, 18.0);
        assert_eq!(r.system_joules, 40.0);
    }

    #[test]
    fn faster_is_more_efficient() {
        let mib = MibPlatform {
            name: "MIB C=32",
            seconds: 1.0,
        };
        let fast = report(&mib, 0.001);
        let slow = report(&mib, 0.1);
        assert!(fast.device_efficiency > slow.device_efficiency * 50.0);
    }
}
