//! Architecture specifications (Table II of the paper).

use std::fmt::Write as _;

/// Specification row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformSpec {
    /// Platform name used in reports.
    pub name: &'static str,
    /// Device model.
    pub model: &'static str,
    /// Process node in nanometres.
    pub process_nm: u32,
    /// Clock frequency in Hz.
    pub clock_hz: f64,
    /// Peak FLOP/s.
    pub peak_flops: f64,
    /// Memory bandwidth in bytes/s.
    pub bandwidth: f64,
    /// Thermal design power in watts.
    pub tdp_w: f64,
    /// Software library / stack.
    pub library: &'static str,
}

/// The MIB `C = 16` prototype row.
pub fn mib_c16() -> PlatformSpec {
    PlatformSpec {
        name: "MIB C=16",
        model: "Alveo U50",
        process_nm: 16,
        clock_hz: 300e6,
        peak_flops: 33e9,
        bandwidth: 28.8e9,
        tdp_w: 75.0,
        library: "ours",
    }
}

/// The MIB `C = 32` prototype row.
pub fn mib_c32() -> PlatformSpec {
    PlatformSpec {
        name: "MIB C=32",
        model: "Alveo U50",
        process_nm: 16,
        clock_hz: 236e6,
        peak_flops: 60e9,
        bandwidth: 57.6e9,
        tdp_w: 75.0,
        library: "ours",
    }
}

/// The RSQP (CPU+FPGA) row; ranges in the paper are represented by their
/// upper ends.
pub fn rsqp() -> PlatformSpec {
    PlatformSpec {
        name: "RSQP",
        model: "Alveo (multiple)",
        process_nm: 16,
        clock_hz: 236e6,
        peak_flops: 15.1e9,
        bandwidth: 115.2e9,
        tdp_w: 75.0,
        library: "custom",
    }
}

/// The CPU baseline row (i7-10700KF).
pub fn cpu() -> PlatformSpec {
    PlatformSpec {
        name: "CPU",
        model: "i7-10700KF",
        process_nm: 14,
        clock_hz: 3.8e9,
        peak_flops: 500e9,
        bandwidth: 45.8e9,
        tdp_w: 125.0,
        library: "MKL, QDLDL",
    }
}

/// The GPU baseline row (RTX 3070).
pub fn gpu() -> PlatformSpec {
    PlatformSpec {
        name: "GPU",
        model: "RTX 3070",
        process_nm: 8,
        clock_hz: 1.75e9,
        peak_flops: 20e12,
        bandwidth: 448e9,
        tdp_w: 220.0,
        library: "cuSparse",
    }
}

/// All Table II rows in paper order.
pub fn all() -> Vec<PlatformSpec> {
    vec![mib_c16(), mib_c32(), rsqp(), cpu(), gpu()]
}

/// Renders Table II as an aligned text table.
pub fn render_table() -> String {
    let rows = all();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<18} {:>8} {:>10} {:>10} {:>12} {:>6}  Library",
        "Platform", "Model", "Process", "Clock", "GFLOPS", "BW (GB/s)", "TDP"
    );
    for s in rows {
        let _ = writeln!(
            out,
            "{:<10} {:<18} {:>6}nm {:>7.0}MHz {:>10.1} {:>12.1} {:>5.0}W  {}",
            s.name,
            s.model,
            s.process_nm,
            s.clock_hz / 1e6,
            s.peak_flops / 1e9,
            s.bandwidth / 1e9,
            s.tdp_w,
            s.library
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_values() {
        assert_eq!(mib_c16().clock_hz, 300e6);
        assert_eq!(mib_c32().clock_hz, 236e6);
        assert_eq!(cpu().peak_flops, 500e9);
        assert_eq!(gpu().peak_flops, 20e12);
        assert_eq!(gpu().bandwidth, 448e9);
        assert_eq!(all().len(), 5);
    }

    #[test]
    fn render_contains_all_rows() {
        let t = render_table();
        for s in all() {
            assert!(t.contains(s.name), "{} missing", s.name);
        }
    }
}
