//! Analytic timing models for the baseline platforms.

use mib_qp::{KktBackend, Problem, Settings, SolveResult};

/// Platform-independent summary of the work one solve performs, extracted
/// from the reference solver's exact profile. Every platform model consumes
/// this — the algorithm (and therefore the iterate trajectory and iteration
/// counts) is identical across platforms; only the cost per unit of work
/// differs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkSummary {
    /// Number of decision variables.
    pub n: usize,
    /// Number of constraints.
    pub m: usize,
    /// Nonzeros of `A`.
    pub nnz_a: usize,
    /// Nonzeros of `P` (upper triangle).
    pub nnz_p: usize,
    /// ADMM iterations.
    pub admm_iters: usize,
    /// Total PCG iterations (indirect variant; 0 otherwise).
    pub pcg_iters: usize,
    /// Numeric factorizations performed (direct variant; 0 otherwise).
    pub factor_count: usize,
    /// FLOPs of one numeric factorization.
    pub factor_flops_each: f64,
    /// FLOPs of one triangular-solve pass (both solves plus diagonal).
    pub trisolve_flops_each: f64,
    /// Total sparse matrix–vector FLOPs over the solve.
    pub spmv_flops: f64,
    /// Total dense vector FLOPs over the solve.
    pub vector_flops: f64,
    /// Which variant ran.
    pub backend: KktBackend,
}

impl WorkSummary {
    /// Builds a summary from a finished reference solve.
    pub fn from_result(problem: &Problem, settings: &Settings, result: &SolveResult) -> Self {
        let p = &result.profile;
        let factor_count = if settings.backend == KktBackend::Direct {
            p.factor_count
        } else {
            0
        };
        WorkSummary {
            n: problem.num_vars(),
            m: problem.num_constraints(),
            nnz_a: problem.a().nnz(),
            nnz_p: problem.p().nnz(),
            admm_iters: result.iterations,
            pcg_iters: p.pcg_iters,
            factor_count,
            factor_flops_each: if factor_count > 0 {
                p.factor_flops / factor_count as f64
            } else {
                0.0
            },
            trisolve_flops_each: if result.iterations > 0 {
                p.trisolve_flops / result.iterations as f64
            } else {
                0.0
            },
            spmv_flops: p.spmv_flops,
            vector_flops: p.vector_flops,
            backend: settings.backend,
        }
    }

    /// Total FLOPs across all phases.
    pub fn total_flops(&self) -> f64 {
        self.factor_flops_each * self.factor_count as f64
            + self.trisolve_flops_each * self.admm_iters as f64
            + self.spmv_flops
            + self.vector_flops
    }

    /// Approximate bytes touched by one sparse matrix–vector product
    /// (CSC value + index + vector gather traffic).
    fn spmv_bytes_per_flop() -> f64 {
        // 8B value + 4B index per nonzero for 2 flops, plus irregular
        // vector access amortized: ~10 bytes/flop.
        10.0
    }
}

/// A platform's timing/energy/jitter model.
pub trait PlatformModel: std::fmt::Debug {
    /// Platform display name.
    fn name(&self) -> &'static str;

    /// Deterministic (mean) end-to-end solve time in seconds.
    fn solve_time(&self, w: &WorkSummary) -> f64;

    /// Device power under load, in watts (Section V.C measurements).
    fn load_power(&self) -> f64;

    /// Device idle power, in watts.
    fn idle_power(&self) -> f64;

    /// Host-CPU idle power to add for *system* energy accounting
    /// (accelerators still need a host, Section V.C).
    fn host_idle_power(&self) -> f64 {
        0.0
    }

    /// Coefficient of variation of the runtime distribution (jitter model).
    fn jitter_cv(&self) -> f64;
}

/// Which CPU software stack is modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuVariant {
    /// Intel MKL sparse kernels (OSQP-indirect baseline).
    Mkl,
    /// OSQP's built-in kernels + QDLDL (OSQP-direct baseline).
    Builtin,
}

/// i7-10700KF running OSQP.
///
/// Sparse kernels on CPUs are memory-bound with irregular access: the
/// model charges SpMV at `bandwidth / 10 bytes-per-flop` with a gather
/// inefficiency factor, factorization at a modestly higher rate (better
/// locality), and dense vector work at streaming bandwidth. A small
/// per-iteration overhead covers loop control and termination checks.
#[derive(Debug, Clone)]
pub struct CpuModel {
    /// Software stack variant.
    pub variant: CpuVariant,
    spec: crate::specs::PlatformSpec,
}

impl CpuModel {
    /// Builds the model with Table II's CPU row.
    pub fn new(variant: CpuVariant) -> Self {
        CpuModel {
            variant,
            spec: crate::specs::cpu(),
        }
    }

    fn spmv_rate(&self) -> f64 {
        // Effective sparse FLOP rate on benchmark-sized matrices: a single
        // core chasing CSC indices sustains roughly a quarter of the
        // socket's bandwidth; MKL's inspector-executor kernels stream
        // slightly better than OSQP's built-ins.
        let eff = match self.variant {
            CpuVariant::Mkl => 0.20,
            CpuVariant::Builtin => 0.16,
        };
        eff * self.spec.bandwidth / WorkSummary::spmv_bytes_per_flop()
    }

    fn factor_rate(&self) -> f64 {
        // Up-looking LDL is serial pointer-chasing with some locality.
        1.5e9
    }

    fn vector_rate(&self) -> f64 {
        // Streaming BLAS1: 2 loads + 1 store per flop ~ 24 bytes/flop.
        self.spec.bandwidth / 24.0
    }

    /// Fixed cost of one ADMM step outside the kernels (loop control,
    /// projection branches, bookkeeping).
    fn admm_overhead(&self) -> f64 {
        4e-6
    }

    /// Fixed cost of one PCG iteration: three sparse kernel invocations
    /// plus five BLAS1 calls, each with call/dispatch overhead.
    fn pcg_overhead(&self) -> f64 {
        // Three sparse kernel invocations (~3 us each for MKL's
        // inspector-executor on small matrices) plus five BLAS1 calls.
        match self.variant {
            CpuVariant::Mkl => 11e-6,
            CpuVariant::Builtin => 7e-6,
        }
    }
}

impl PlatformModel for CpuModel {
    fn name(&self) -> &'static str {
        match self.variant {
            CpuVariant::Mkl => "CPU (MKL)",
            CpuVariant::Builtin => "CPU (QDLDL)",
        }
    }

    fn solve_time(&self, w: &WorkSummary) -> f64 {
        let spmv = w.spmv_flops / self.spmv_rate();
        let factor = w.factor_flops_each * w.factor_count as f64 / self.factor_rate();
        let trisolve = w.trisolve_flops_each * w.admm_iters as f64 / (0.7 * self.spmv_rate());
        let vector = w.vector_flops / self.vector_rate();
        let overhead =
            self.admm_overhead() * w.admm_iters as f64 + self.pcg_overhead() * w.pcg_iters as f64;
        spmv + factor + trisolve + vector + overhead + 8e-6
    }

    fn load_power(&self) -> f64 {
        49.0
    }

    fn idle_power(&self) -> f64 {
        22.0
    }

    fn jitter_cv(&self) -> f64 {
        // OS scheduling noise, SMT interference, DVFS.
        0.055
    }
}

/// RTX 3070 running cuOSQP (indirect only — the paper notes GPU direct
/// solvers perform poorly on these workloads and are unsupported).
///
/// Every ADMM iteration launches a pipeline of kernels and synchronizes
/// scalars back to the host for control flow; each PCG iteration launches
/// its own SpMV + reduction kernels. Launch/sync overheads dominate small
/// problems; bandwidth wins on large ones — the crossover the paper plots.
#[derive(Debug, Clone)]
pub struct GpuModel {
    spec: crate::specs::PlatformSpec,
}

impl GpuModel {
    /// Builds the model with Table II's GPU row.
    pub fn new() -> Self {
        GpuModel {
            spec: crate::specs::gpu(),
        }
    }

    fn kernel_launch(&self) -> f64 {
        2.5e-6
    }

    fn host_sync(&self) -> f64 {
        4.5e-6
    }
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel::new()
    }
}

impl PlatformModel for GpuModel {
    fn name(&self) -> &'static str {
        "GPU (cuSparse)"
    }

    fn solve_time(&self, w: &WorkSummary) -> f64 {
        // Data-movement cost: SpMV at 60% of HBM bandwidth, vector ops at
        // full streaming bandwidth.
        let spmv = w.spmv_flops * WorkSummary::spmv_bytes_per_flop() / (0.7 * self.spec.bandwidth);
        let vector = w.vector_flops * 24.0 / self.spec.bandwidth;
        // Launch/sync structure: ~6 kernels per ADMM step plus 2 host
        // syncs; ~4 kernels per PCG iteration plus 1 sync for the scalar
        // recurrences.
        let admm_overhead =
            w.admm_iters as f64 * (6.0 * self.kernel_launch() + 2.0 * self.host_sync());
        let pcg_overhead = w.pcg_iters as f64 * (3.0 * self.kernel_launch() + self.host_sync());
        spmv + vector + admm_overhead + pcg_overhead + 40e-6
    }

    fn load_power(&self) -> f64 {
        65.0
    }

    fn idle_power(&self) -> f64 {
        30.0
    }

    fn host_idle_power(&self) -> f64 {
        22.0
    }

    fn jitter_cv(&self) -> f64 {
        // Clock boosting, driver scheduling, PCIe contention.
        0.11
    }
}

/// RSQP: PCG on FPGA, the rest of OSQP on the host, with the KKT solution
/// vector crossing PCIe **every ADMM iteration** (the paper's explanation
/// for beating it: "elimination of communication costs between the CPU and
/// the FPGA at each ADMM iteration"). Indirect-only.
#[derive(Debug, Clone)]
pub struct RsqpModel {
    spec: crate::specs::PlatformSpec,
}

impl RsqpModel {
    /// Builds the model with Table II's RSQP row.
    pub fn new() -> Self {
        RsqpModel {
            spec: crate::specs::rsqp(),
        }
    }
}

impl Default for RsqpModel {
    fn default() -> Self {
        RsqpModel::new()
    }
}

impl PlatformModel for RsqpModel {
    fn name(&self) -> &'static str {
        "RSQP"
    }

    fn solve_time(&self, w: &WorkSummary) -> f64 {
        // FPGA-side PCG: customized datapath, ~40% of its peak on SpMV.
        let fpga_flops = w.spmv_flops;
        let fpga = fpga_flops / (0.40 * self.spec.peak_flops);
        // Host-side vector work (ADMM steps run on the CPU) at streaming
        // rates plus per-step software overhead.
        let host = w.vector_flops / (45.8e9 / 24.0) + 4e-6 * w.admm_iters as f64;
        // Per-iteration PCIe round trip of the (n + m) KKT solution vector:
        // XRT buffer sync + kernel handshake latency dominates at these
        // sizes (~tens of microseconds per crossing pair).
        let bytes = 8.0 * (w.n + w.m) as f64;
        let pcie = w.admm_iters as f64 * (2.0 * (bytes / 12e9) + 100e-6);
        fpga + host + pcie + 200e-6
    }

    fn load_power(&self) -> f64 {
        18.0
    }

    fn idle_power(&self) -> f64 {
        12.0
    }

    fn host_idle_power(&self) -> f64 {
        22.0
    }

    fn jitter_cv(&self) -> f64 {
        // Host round trips every iteration inherit OS noise.
        0.04
    }
}

/// The MIB prototype as a [`PlatformModel`]: timing comes from compiled
/// cycle counts (passed in), power/jitter from the paper's measurements.
#[derive(Debug, Clone)]
pub struct MibPlatform {
    /// Prototype name ("MIB C=16" / "MIB C=32").
    pub name: &'static str,
    /// End-to-end solve time in seconds from the cycle-accurate model.
    pub seconds: f64,
}

impl PlatformModel for MibPlatform {
    fn name(&self) -> &'static str {
        self.name
    }

    fn solve_time(&self, _w: &WorkSummary) -> f64 {
        self.seconds
    }

    fn load_power(&self) -> f64 {
        18.0
    }

    fn idle_power(&self) -> f64 {
        12.0
    }

    fn host_idle_power(&self) -> f64 {
        22.0
    }

    fn jitter_cv(&self) -> f64 {
        // Cycle-deterministic execution; only host invocation noise
        // remains ("the reduction of jitter is due to our cycle-accurate
        // control of the program execution").
        0.0032
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_work(scale: f64) -> WorkSummary {
        WorkSummary {
            n: (100.0 * scale) as usize,
            m: (150.0 * scale) as usize,
            nnz_a: (700.0 * scale) as usize,
            nnz_p: (300.0 * scale) as usize,
            admm_iters: 100,
            pcg_iters: 400,
            factor_count: 0,
            factor_flops_each: 0.0,
            trisolve_flops_each: 0.0,
            spmv_flops: 2_000_000.0 * scale,
            vector_flops: 400_000.0 * scale,
            backend: KktBackend::Indirect,
        }
    }

    #[test]
    fn gpu_loses_small_wins_large() {
        let cpu = CpuModel::new(CpuVariant::Mkl);
        let gpu = GpuModel::new();
        let small = sample_work(0.05);
        let large = sample_work(400.0);
        assert!(
            gpu.solve_time(&small) > cpu.solve_time(&small),
            "launch overhead must dominate small problems"
        );
        assert!(
            gpu.solve_time(&large) < cpu.solve_time(&large),
            "bandwidth must win on large problems"
        );
    }

    #[test]
    fn rsqp_pays_per_iteration_pcie() {
        let r = RsqpModel::new();
        let mut w = sample_work(1.0);
        let t1 = r.solve_time(&w);
        w.admm_iters *= 10;
        let t2 = r.solve_time(&w);
        assert!(
            t2 > t1 + 9.0 * 18e-6 * 100.0 * 0.9,
            "pcie cost must scale with iterations"
        );
    }

    #[test]
    fn jitter_ordering_matches_paper() {
        let mib = MibPlatform {
            name: "MIB C=32",
            seconds: 1e-3,
        };
        let cpu = CpuModel::new(CpuVariant::Mkl);
        let gpu = GpuModel::new();
        assert!(mib.jitter_cv() * 10.0 < cpu.jitter_cv());
        assert!(mib.jitter_cv() * 30.0 < gpu.jitter_cv());
    }

    #[test]
    fn direct_cpu_charges_factorization() {
        let cpu = CpuModel::new(CpuVariant::Builtin);
        let mut w = sample_work(1.0);
        w.backend = KktBackend::Direct;
        w.pcg_iters = 0;
        let base = cpu.solve_time(&w);
        w.factor_count = 5;
        w.factor_flops_each = 1e6;
        let with_factor = cpu.solve_time(&w);
        assert!(with_factor > base);
    }

    #[test]
    fn power_constants_match_section_v() {
        assert_eq!(CpuModel::new(CpuVariant::Mkl).load_power(), 49.0);
        assert_eq!(GpuModel::new().load_power(), 65.0);
        assert_eq!(GpuModel::new().idle_power(), 30.0);
        let mib = MibPlatform {
            name: "MIB C=32",
            seconds: 1.0,
        };
        assert_eq!(mib.load_power(), 18.0);
        assert_eq!(mib.idle_power(), 12.0);
    }
}
