//! FPGA resource model (Figure 9 of the paper).
//!
//! The paper's prototypes map the butterfly's floating-point adders and
//! multipliers to LUTs and registers (the network topology does not align
//! with the grid DSP layout), with register files in BRAM and HBM/PCIe
//! shells fixed. This module models per-component costs so the Fig. 9
//! usage chart can be regenerated for any width.

/// Available resources of the Xilinx Alveo U50 (Section V.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceCapacity {
    /// Lookup tables.
    pub luts: u64,
    /// Flip-flop registers.
    pub registers: u64,
    /// DSP slices.
    pub dsps: u64,
    /// Block RAMs (36 kb).
    pub brams: u64,
}

/// The Alveo U50 capacity from the paper: 872K LUTs, 1743K registers,
/// 5952 DSPs (plus 1344 BRAM36).
pub fn alveo_u50() -> DeviceCapacity {
    DeviceCapacity {
        luts: 872_000,
        registers: 1_743_000,
        dsps: 5_952,
        brams: 1_344,
    }
}

/// Estimated resource usage of one MIB instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceUsage {
    /// Network width.
    pub width: usize,
    /// LUTs used.
    pub luts: u64,
    /// Registers used.
    pub registers: u64,
    /// DSPs used.
    pub dsps: u64,
    /// BRAMs used.
    pub brams: u64,
}

impl ResourceUsage {
    /// Usage as percentages of a device's capacity
    /// `(lut%, reg%, dsp%, bram%)`.
    pub fn percent_of(&self, dev: &DeviceCapacity) -> [f64; 4] {
        [
            100.0 * self.luts as f64 / dev.luts as f64,
            100.0 * self.registers as f64 / dev.registers as f64,
            100.0 * self.dsps as f64 / dev.dsps as f64,
            100.0 * self.brams as f64 / dev.brams as f64,
        ]
    }
}

/// Models the resource usage of a width-`c` MIB instance.
///
/// Component costs (per-unit estimates for LUT-mapped double-precision
/// floating point, consistent with the paper's observation that the
/// network avoids DSPs): adder node ≈ 900 LUT / 1500 FF, multiplier node
/// ≈ 2500 LUT / 3000 FF, per-lane register file ≈ 8 BRAM, plus the fixed
/// HBM + PCIe shell.
pub fn estimate(c: usize) -> ResourceUsage {
    assert!(
        c.is_power_of_two() && c >= 2,
        "width must be a power of two"
    );
    let stages = c.trailing_zeros() as u64;
    let adders = c as u64 * stages;
    let multipliers = c as u64;
    // Control/mux overhead per node grows mildly with width (longer
    // routes, wider config distribution).
    let ctrl = 120 * (c as u64) * (stages + 1);
    let shell_luts = 120_000u64; // HBM controller + PCIe + DMA shell
    let shell_regs = 180_000u64;
    let shell_brams = 150u64;
    ResourceUsage {
        width: c,
        luts: shell_luts + adders * 900 + multipliers * 2500 + ctrl,
        registers: shell_regs + adders * 1500 + multipliers * 3000 + ctrl,
        dsps: 0,
        brams: shell_brams + 8 * c as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_prototypes_fit_the_u50() {
        let dev = alveo_u50();
        for c in [16, 32] {
            let u = estimate(c);
            let pct = u.percent_of(&dev);
            assert!(
                pct[0] < 100.0 && pct[1] < 100.0 && pct[3] < 100.0,
                "C={c}: {pct:?}"
            );
        }
    }

    #[test]
    fn usage_grows_superlinearly_in_width() {
        let u16 = estimate(16);
        let u32 = estimate(32);
        // log factor: C log C scaling of the adder stages.
        assert!(u32.luts - 120_000 > 2 * (u16.luts - 120_000));
    }

    #[test]
    fn network_uses_no_dsps() {
        assert_eq!(estimate(32).dsps, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_width() {
        estimate(20);
    }
}
