//! Shared evaluation machinery for the figure/table binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation section (see DESIGN.md §3 for the index); this library holds
//! the common pipeline: run the reference solver to get exact work
//! profiles and iteration counts, compile the problem for the MIB machine
//! to get deterministic cycle counts, and evaluate the baseline platform
//! models on the same work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod serve_json;

use std::fmt::Write as _;

use mib_compiler::lower::{lower, LoweredQp};
use mib_core::MibConfig;
use mib_platforms::models::MibPlatform;
use mib_platforms::{CpuModel, CpuVariant, GpuModel, PlatformModel, RsqpModel, WorkSummary};
use mib_problems::BenchmarkInstance;
use mib_qp::{KktBackend, Settings, SolveResult, Solver};

pub use mib_sparse::vector::geomean;

/// Reference-solver settings used across all experiments (OSQP defaults
/// with a higher iteration cap so every benchmark instance converges).
pub fn eval_settings(backend: KktBackend) -> Settings {
    let mut s = Settings::with_backend(backend);
    s.max_iter = 20_000;
    s
}

/// Runs the reference solver and summarizes its work.
pub fn run_reference(
    instance: &BenchmarkInstance,
    backend: KktBackend,
) -> (SolveResult, WorkSummary) {
    let settings = eval_settings(backend);
    let mut solver = Solver::new(instance.problem.clone(), settings.clone())
        .expect("benchmark instance is valid");
    let result = solver.solve();
    let work = WorkSummary::from_result(&instance.problem, &settings, &result);
    (result, work)
}

/// End-to-end evaluation of one instance with one variant on every
/// platform.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The problem's provenance.
    pub domain: &'static str,
    /// Instance index within its suite.
    pub index: usize,
    /// Total problem nonzeros.
    pub nnz: usize,
    /// Variant evaluated.
    pub backend: KktBackend,
    /// Whether the reference run converged.
    pub solved: bool,
    /// ADMM iterations of the reference run.
    pub iterations: usize,
    /// Work summary feeding the platform models.
    pub work: WorkSummary,
    /// MIB C=32 end-to-end seconds (cycle-accurate).
    pub mib_seconds: f64,
    /// MIB utilization proxy: achieved FLOP/s over peak.
    pub mib_utilization: f64,
    /// Baseline seconds: CPU (variant-matched), GPU (indirect only),
    /// RSQP (indirect only).
    pub cpu_seconds: f64,
    /// GPU model seconds (`None` for the direct variant — unsupported).
    pub gpu_seconds: Option<f64>,
    /// RSQP model seconds (`None` for the direct variant).
    pub rsqp_seconds: Option<f64>,
}

/// Compiles the instance for the MIB machine and evaluates the full
/// platform matrix.
pub fn evaluate(
    instance: &BenchmarkInstance,
    backend: KktBackend,
    config: MibConfig,
) -> Evaluation {
    let (result, work) = run_reference(instance, backend);
    let settings = eval_settings(backend);
    let lowered = lower(&instance.problem, &settings, config).expect("lowering succeeds");
    let mib_seconds = mib_solve_seconds(&lowered, &settings, &result);

    let cpu = match backend {
        KktBackend::Direct => CpuModel::new(CpuVariant::Builtin),
        KktBackend::Indirect => CpuModel::new(CpuVariant::Mkl),
    };
    let cpu_seconds = cpu.solve_time(&work);
    let (gpu_seconds, rsqp_seconds) = match backend {
        KktBackend::Direct => (None, None),
        KktBackend::Indirect => (
            Some(GpuModel::new().solve_time(&work)),
            Some(RsqpModel::new().solve_time(&work)),
        ),
    };
    let total_flops = work.total_flops();
    let mib_utilization = total_flops / mib_seconds / peak_flops(&config);

    Evaluation {
        domain: instance.domain.name(),
        index: instance.index,
        nnz: instance.problem.total_nnz(),
        backend,
        solved: result.status.is_solved(),
        iterations: result.iterations,
        work,
        mib_seconds,
        mib_utilization,
        cpu_seconds,
        gpu_seconds,
        rsqp_seconds,
    }
}

/// Peak FLOP/s of an MIB configuration (Table II: 33G at C=16, 60G at
/// C=32; interpolated elsewhere).
pub fn peak_flops(config: &MibConfig) -> f64 {
    // One multiply + one add per lane per cycle at the configured clock.
    2.0 * config.width as f64 * config.clock_hz
}

/// Deterministic MIB end-to-end time from compiled schedules plus the
/// reference run's iteration statistics.
pub fn mib_solve_seconds(lowered: &LoweredQp, settings: &Settings, result: &SolveResult) -> f64 {
    let checks = result.iterations.div_ceil(settings.check_termination);
    lowered.total_seconds(
        result.iterations,
        result.profile.pcg_iters,
        checks,
        result.profile.factor_count,
    )
}

/// The MIB platform wrapper for energy/jitter reporting.
pub fn mib_platform(seconds: f64) -> MibPlatform {
    MibPlatform {
        name: "MIB C=32",
        seconds,
    }
}

/// Formats a ratio table row.
pub fn ratio(baseline: f64, ours: f64) -> f64 {
    baseline / ours
}

/// Writes a report both to stdout and to `results/<name>.txt`.
pub fn emit_report(name: &str, body: &str) {
    println!("{body}");
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.txt"));
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("(written to {})", path.display());
        }
    }
}

/// Renders an ASCII spy plot of a sparse matrix (used by the pattern
/// figures), downsampling to at most `max_dim` rows/columns.
pub fn spy(m: &mib_sparse::CscMatrix, max_dim: usize) -> String {
    let (nr, nc) = m.shape();
    let rs = nr.div_ceil(max_dim).max(1);
    let cs = nc.div_ceil(max_dim).max(1);
    let h = nr.div_ceil(rs);
    let w = nc.div_ceil(cs);
    let mut grid = vec![false; h * w];
    for (i, j, _) in m.iter() {
        grid[(i / rs) * w + (j / cs)] = true;
    }
    let mut out = String::new();
    for r in 0..h {
        for c in 0..w {
            out.push(if grid[r * w + c] { '*' } else { '.' });
        }
        out.push('\n');
    }
    let _ = write!(out, "({nr}x{nc}, nnz={})", m.nnz());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mib_problems::Domain;

    #[test]
    fn evaluate_small_instance_end_to_end() {
        let inst = mib_problems::instance(Domain::Mpc, 0);
        let e = evaluate(&inst, KktBackend::Direct, MibConfig::c32());
        assert!(e.solved, "reference run must converge");
        assert!(e.mib_seconds > 0.0);
        assert!(e.cpu_seconds > 0.0);
        assert!(e.gpu_seconds.is_none());
        let e = evaluate(&inst, KktBackend::Indirect, MibConfig::c32());
        assert!(e.gpu_seconds.is_some());
        assert!(e.rsqp_seconds.unwrap() > 0.0);
    }

    #[test]
    fn spy_renders_diagonal() {
        let m = mib_sparse::CscMatrix::identity(4);
        let s = spy(&m, 8);
        assert!(s.starts_with("*...\n.*..\n..*.\n...*\n"));
    }

    #[test]
    fn peak_flops_matches_table_two_scale() {
        assert!((peak_flops(&MibConfig::c16()) - 9.6e9).abs() < 1e6);
        // Paper reports 33G/60G including multiple FP units per lane; our
        // model counts the mul+add pair, a consistent normalization.
    }
}
