//! Benchmark regression detection: diffs the committed benchmark
//! documents (`results/BENCH_serve.json`, `results/BENCH_kernels.json`)
//! against a baseline revision of the same files, with per-metric
//! tolerances tuned for the noisy single-core runners this repository
//! measures on.
//!
//! The comparison is structural, not textual: a tiny recursive-descent
//! JSON parser (no serde in the dependency tree) loads both documents,
//! matched entries are located by their identity keys (`mode` for serve
//! runs; `group`/`kernel`/`n`/`path` for kernel rows), and each tracked
//! metric is checked against its tolerance. An entry present in the
//! baseline but missing from the current document is itself a failure —
//! losing coverage must not pass silently.

use std::fmt::Write as _;

/// Serve-run throughput may drop to this fraction of baseline before it
/// counts as a regression (closed/open-loop rates on a shared single
/// core jitter by tens of percent run to run).
pub const SERVE_THROUGHPUT_MIN_RATIO: f64 = 0.65;

/// Serve-run service-time p50 may grow by this factor before it counts
/// as a regression. The p50 is a log₂ bucket upper bound, so 4.0 allows
/// two buckets of drift.
pub const SERVE_SERVICE_P50_MAX_RATIO: f64 = 4.0;

/// Absolute ceiling on `obs_overhead_pct` wherever it is recorded: the
/// observability plane must stay under 5% of closed-loop throughput
/// regardless of what the baseline measured.
pub const OBS_OVERHEAD_MAX_PCT: f64 = 5.0;

/// Kernel `ns_per_call` may grow by this factor before it counts as a
/// regression.
pub const KERNEL_NS_MAX_RATIO: f64 = 2.5;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value (`None` for non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String value (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements (empty slice for non-arrays).
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    let Some(&c) = bytes.get(*pos) else {
        return Err("unexpected end of input".into());
    };
    match c {
        b'{' => parse_object(bytes, pos),
        b'[' => parse_array(bytes, pos),
        b'"' => Ok(Json::Str(parse_string(bytes, pos)?)),
        b't' => parse_lit(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(bytes, pos, "false", Json::Bool(false)),
        b'n' => parse_lit(bytes, pos, "null", Json::Null),
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => Err(format!("unexpected byte {other:#04x} at {pos}", pos = *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("invalid \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        // Surrogate pairs do not occur in these documents;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("invalid escape {other:#04x}")),
                }
            }
            _ => {
                // Collect the full UTF-8 sequence starting at c.
                let width = utf8_width(c);
                let start = *pos - 1;
                *pos = start + width;
                let chunk = bytes
                    .get(start..*pos)
                    .and_then(|b| std::str::from_utf8(b).ok())
                    .ok_or_else(|| format!("invalid UTF-8 at byte {start}"))?;
                out.push_str(chunk);
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// One compared metric: its identity, both values, the applied rule and
/// the verdict.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Metric identity, e.g. `serve[net-closed].throughput_rps`.
    pub metric: String,
    /// Baseline value (`NaN` when absent in the baseline).
    pub baseline: f64,
    /// Current value (`NaN` when absent in the current document).
    pub current: f64,
    /// Human-readable rule, e.g. `>= 0.65x baseline`.
    pub rule: String,
    /// `false` = regression.
    pub ok: bool,
}

impl Finding {
    fn ratio(metric: String, baseline: f64, current: f64, rule: String, ok: bool) -> Finding {
        Finding {
            metric,
            baseline,
            current,
            rule,
            ok,
        }
    }
}

/// Renders findings as an aligned report; the final line is `PASS` or
/// `FAIL (<n> regressions)`.
pub fn render_findings(findings: &[Finding]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<52} {:>14} {:>14}  {:<22} verdict",
        "metric", "baseline", "current", "rule"
    );
    for f in findings {
        let _ = writeln!(
            out,
            "{:<52} {:>14.3} {:>14.3}  {:<22} {}",
            f.metric,
            f.baseline,
            f.current,
            f.rule,
            if f.ok { "ok" } else { "REGRESSION" }
        );
    }
    let bad = findings.iter().filter(|f| !f.ok).count();
    if bad == 0 {
        out.push_str("PASS\n");
    } else {
        let _ = writeln!(out, "FAIL ({bad} regressions)");
    }
    out
}

/// Locates a serve run by mode.
fn serve_run<'a>(doc: &'a Json, mode: &str) -> Option<&'a Json> {
    doc.get("runs")?
        .items()
        .iter()
        .find(|r| r.get("mode").and_then(Json::as_str) == Some(mode))
}

/// The p50 of a named latency series of a serve run.
fn latency_p50(run: &Json, series: &str) -> Option<f64> {
    run.get("latency_us")?
        .items()
        .iter()
        .find(|l| l.get("series").and_then(Json::as_str) == Some(series))?
        .get("p50")
        .and_then(Json::as_f64)
}

/// Diffs two `BENCH_serve.json` documents.
///
/// # Errors
///
/// Returns parse errors for either document.
pub fn diff_serve(baseline: &str, current: &str) -> Result<Vec<Finding>, String> {
    let base = Json::parse(baseline).map_err(|e| format!("baseline serve: {e}"))?;
    let cur = Json::parse(current).map_err(|e| format!("current serve: {e}"))?;
    let mut findings = Vec::new();
    for run in base.get("runs").map_or(&[][..], Json::items) {
        let Some(mode) = run.get("mode").and_then(Json::as_str) else {
            continue;
        };
        let cur_run = serve_run(&cur, mode);
        if cur_run.is_none() {
            findings.push(Finding::ratio(
                format!("serve[{mode}]"),
                f64::NAN,
                f64::NAN,
                "run present".into(),
                false,
            ));
            continue;
        }
        let cur_run = cur_run.expect("checked above");
        if let Some(base_rps) = run.get("throughput_rps").and_then(Json::as_f64) {
            let cur_rps = cur_run
                .get("throughput_rps")
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN);
            findings.push(Finding::ratio(
                format!("serve[{mode}].throughput_rps"),
                base_rps,
                cur_rps,
                format!(">= {SERVE_THROUGHPUT_MIN_RATIO}x baseline"),
                cur_rps >= base_rps * SERVE_THROUGHPUT_MIN_RATIO,
            ));
        }
        if let Some(base_p50) = latency_p50(run, "service") {
            let cur_p50 = latency_p50(cur_run, "service").unwrap_or(f64::NAN);
            findings.push(Finding::ratio(
                format!("serve[{mode}].service.p50_us"),
                base_p50,
                cur_p50,
                format!("<= {SERVE_SERVICE_P50_MAX_RATIO}x baseline"),
                cur_p50 <= base_p50 * SERVE_SERVICE_P50_MAX_RATIO,
            ));
        }
        // The obs-overhead bound is absolute: whatever the baseline
        // measured, the current document must stay under the ceiling.
        if let Some(cur_pct) = cur_run.get("obs_overhead_pct").and_then(Json::as_f64) {
            let base_pct = run
                .get("obs_overhead_pct")
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN);
            findings.push(Finding::ratio(
                format!("serve[{mode}].obs_overhead_pct"),
                base_pct,
                cur_pct,
                format!("< {OBS_OVERHEAD_MAX_PCT} absolute"),
                cur_pct < OBS_OVERHEAD_MAX_PCT,
            ));
        } else if run.get("obs_overhead_pct").is_some() {
            findings.push(Finding::ratio(
                format!("serve[{mode}].obs_overhead_pct"),
                run.get("obs_overhead_pct")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN),
                f64::NAN,
                "metric present".into(),
                false,
            ));
        }
    }
    Ok(findings)
}

/// Diffs two `BENCH_kernels.json` documents over `ns_per_call` of every
/// baseline kernel row (matched on `group`/`kernel`/`n`/`path`).
///
/// # Errors
///
/// Returns parse errors for either document.
pub fn diff_kernels(baseline: &str, current: &str) -> Result<Vec<Finding>, String> {
    let base = Json::parse(baseline).map_err(|e| format!("baseline kernels: {e}"))?;
    let cur = Json::parse(current).map_err(|e| format!("current kernels: {e}"))?;
    let identity = |row: &Json| -> Option<(String, String, u64, String)> {
        Some((
            row.get("group")?.as_str()?.to_string(),
            row.get("kernel")?.as_str()?.to_string(),
            row.get("n")?.as_f64()? as u64,
            row.get("path")?.as_str()?.to_string(),
        ))
    };
    let mut findings = Vec::new();
    for row in base.get("kernels").map_or(&[][..], Json::items) {
        let Some(key) = identity(row) else { continue };
        let Some(base_ns) = row.get("ns_per_call").and_then(Json::as_f64) else {
            continue;
        };
        let label = format!(
            "kernels[{}/{}/n={}/{}].ns_per_call",
            key.0, key.1, key.2, key.3
        );
        let cur_ns = cur
            .get("kernels")
            .map_or(&[][..], Json::items)
            .iter()
            .find(|r| identity(r).as_ref() == Some(&key))
            .and_then(|r| r.get("ns_per_call"))
            .and_then(Json::as_f64);
        match cur_ns {
            Some(cur_ns) => findings.push(Finding::ratio(
                label,
                base_ns,
                cur_ns,
                format!("<= {KERNEL_NS_MAX_RATIO}x baseline"),
                cur_ns <= base_ns * KERNEL_NS_MAX_RATIO,
            )),
            None => findings.push(Finding::ratio(
                label,
                base_ns,
                f64::NAN,
                "row present".into(),
                false,
            )),
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SERVE: &str = r#"{
      "bench": "serve",
      "runs": [
        {"mode": "net-closed", "throughput_rps": 4000.0,
         "obs_overhead_pct": 1.5,
         "latency_us": [{"series": "service", "mean": 700.0, "p50": 256, "p99": 65536}]},
        {"mode": "net-open", "throughput_rps": 2800.0,
         "latency_us": [{"series": "service", "mean": 700.0, "p50": 256, "p99": 65536}]}
      ]
    }"#;

    fn with(serve: &str, from: &str, to: &str) -> String {
        assert!(serve.contains(from), "fixture must contain {from}");
        serve.replace(from, to)
    }

    #[test]
    fn parser_round_trips_real_documents() {
        let doc = Json::parse(SERVE).expect("fixture parses");
        assert_eq!(
            doc.get("runs").expect("runs").items()[0]
                .get("mode")
                .and_then(Json::as_str),
            Some("net-closed")
        );
        for bad in ["{", "[1,]", "{\"a\" 1}", "nul", "{} trailing"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
        // Escapes and unicode survive.
        let s = Json::parse(r#"{"k": "a{}\"\\\nμs"}"#).expect("escapes parse");
        assert_eq!(s.get("k").and_then(Json::as_str), Some("a{}\"\\\nμs"));
    }

    #[test]
    fn identical_documents_pass() {
        let findings = diff_serve(SERVE, SERVE).expect("diff runs");
        assert!(findings.iter().all(|f| f.ok), "{findings:?}");
        assert!(render_findings(&findings).ends_with("PASS\n"));
    }

    #[test]
    fn throughput_regression_is_flagged_within_tolerance_is_not() {
        // 30% slower: inside the 0.65x bound, still ok.
        let slower = with(
            SERVE,
            "\"throughput_rps\": 4000.0",
            "\"throughput_rps\": 2800.0",
        );
        assert!(diff_serve(SERVE, &slower)
            .expect("diff runs")
            .iter()
            .all(|f| f.ok));
        // 50% slower: regression.
        let halved = with(
            SERVE,
            "\"throughput_rps\": 4000.0",
            "\"throughput_rps\": 2000.0",
        );
        let findings = diff_serve(SERVE, &halved).expect("diff runs");
        let bad: Vec<_> = findings.iter().filter(|f| !f.ok).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].metric, "serve[net-closed].throughput_rps");
        assert!(render_findings(&findings).contains("FAIL (1 regressions)"));
    }

    #[test]
    fn obs_overhead_ceiling_is_absolute_and_presence_checked() {
        // Breaching the 5% ceiling fails even if the baseline was worse.
        let bad = with(
            SERVE,
            "\"obs_overhead_pct\": 1.5",
            "\"obs_overhead_pct\": 6.5",
        );
        let findings = diff_serve(&bad, &bad).expect("diff runs");
        assert!(findings
            .iter()
            .any(|f| !f.ok && f.metric.contains("obs_overhead_pct")));
        // Dropping the metric entirely fails too.
        let missing = with(SERVE, "\"obs_overhead_pct\": 1.5,\n         ", "");
        let findings = diff_serve(SERVE, &missing).expect("diff runs");
        assert!(findings
            .iter()
            .any(|f| !f.ok && f.metric.contains("obs_overhead_pct")));
    }

    #[test]
    fn missing_run_and_kernel_rows_fail() {
        let open_only =
            r#"{"bench": "serve", "runs": [{"mode": "net-open", "throughput_rps": 2800.0}]}"#;
        let findings = diff_serve(SERVE, open_only).expect("diff runs");
        assert!(findings
            .iter()
            .any(|f| !f.ok && f.metric == "serve[net-closed]"));

        let kernels = r#"{"kernels": [{"group": "vector", "kernel": "dot", "n": 1000, "path": "avx2", "ns_per_call": 150.0}]}"#;
        let empty = r#"{"kernels": []}"#;
        let findings = diff_kernels(kernels, empty).expect("diff runs");
        assert_eq!(findings.len(), 1);
        assert!(!findings[0].ok);
    }

    #[test]
    fn kernel_slowdowns_respect_the_ratio() {
        let kernels = r#"{"kernels": [{"group": "vector", "kernel": "dot", "n": 1000, "path": "avx2", "ns_per_call": 150.0}]}"#;
        let doubled = kernels.replace("150.0", "300.0");
        assert!(diff_kernels(kernels, &doubled)
            .expect("diff runs")
            .iter()
            .all(|f| f.ok));
        let tripled = kernels.replace("150.0", "450.0");
        assert!(diff_kernels(kernels, &tripled)
            .expect("diff runs")
            .iter()
            .any(|f| !f.ok));
    }
}
