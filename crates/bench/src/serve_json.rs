//! Serde-free structured export of serving benchmark runs:
//! `results/BENCH_serve.json`.
//!
//! Two binaries feed the same document — `serve_bench` (the in-process
//! trace replay, mode `"inprocess"`) and `load_bench` (the socket-level
//! load harness, modes `"net-closed"` / `"net-open"`). Each writes its
//! own run object and must not clobber the others', so the writer
//! *merges*: it re-reads the existing document, splits the `"runs"`
//! array into its top-level objects with a brace/string-aware scanner
//! (no JSON parser in the dependency tree), replaces any run of the
//! same mode, and rewrites the whole document. Every write is validated
//! with [`mib_trace::validate_json`] before it hits the filesystem.

use std::fmt::Write as _;
use std::path::PathBuf;

/// One latency series summary (mean plus bucketed quantile bounds, µs).
#[derive(Debug, Clone)]
pub struct LatencySummary {
    /// Series name (`queue_wait`, `service`, `e2e`, ...).
    pub name: String,
    /// Mean, µs.
    pub mean_us: f64,
    /// Bucketed p50 upper bound, µs.
    pub p50_us: u64,
    /// Bucketed p99 upper bound, µs.
    pub p99_us: u64,
}

/// One benchmark run of the serving stack, in-process or over sockets.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// Distinguishes runs in the shared document: `"inprocess"`,
    /// `"net-closed"` or `"net-open"`. A new run replaces the previous
    /// run of the same mode.
    pub mode: String,
    /// Terminal answers received (sheds excluded).
    pub requests: u64,
    /// Client threads (or connections) driving the run.
    pub clients: u64,
    /// Distinct tenants in the mix.
    pub tenants: u64,
    /// Wall-clock seconds of the replay.
    pub wall_seconds: f64,
    /// Requests per second over the wall clock.
    pub throughput_rps: f64,
    /// Answers re-derived by a direct solve and compared bitwise.
    pub verified_bitwise: u64,
    /// Outcome tallies, e.g. `("solved", 9931)`.
    pub outcomes: Vec<(String, u64)>,
    /// Shed tallies by reason, e.g. `("rate_limited", 412)`.
    pub sheds: Vec<(String, u64)>,
    /// Latency series summaries.
    pub latency: Vec<LatencySummary>,
    /// Closed-loop throughput cost of the full observability plane
    /// (tracing + tail sampling + rolling windows + a live scraper), as
    /// a percentage of the obs-disabled rate. Only the `net-closed` run
    /// measures this; `None` elsewhere.
    pub obs_overhead_pct: Option<f64>,
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        if !s.contains(['.', 'e', 'E']) {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl ServeRun {
    /// Renders this run as one JSON object.
    pub fn to_json(&self) -> String {
        let mut o = String::new();
        o.push_str("    {\n");
        let _ = writeln!(o, "      \"mode\": {},", json_str(&self.mode));
        let _ = writeln!(o, "      \"requests\": {},", self.requests);
        let _ = writeln!(o, "      \"clients\": {},", self.clients);
        let _ = writeln!(o, "      \"tenants\": {},", self.tenants);
        let _ = writeln!(
            o,
            "      \"wall_seconds\": {},",
            json_f64(self.wall_seconds)
        );
        let _ = writeln!(
            o,
            "      \"throughput_rps\": {},",
            json_f64(self.throughput_rps)
        );
        let _ = writeln!(o, "      \"verified_bitwise\": {},", self.verified_bitwise);
        if let Some(pct) = self.obs_overhead_pct {
            let _ = writeln!(o, "      \"obs_overhead_pct\": {},", json_f64(pct));
        }
        o.push_str("      \"outcomes\": {");
        for (i, (name, count)) in self.outcomes.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            let _ = write!(o, "{}: {count}", json_str(name));
        }
        o.push_str("},\n      \"sheds\": {");
        for (i, (name, count)) in self.sheds.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            let _ = write!(o, "{}: {count}", json_str(name));
        }
        o.push_str("},\n      \"latency_us\": [\n");
        for (i, l) in self.latency.iter().enumerate() {
            let _ = write!(
                o,
                "        {{\"series\": {}, \"mean\": {}, \"p50\": {}, \"p99\": {}}}",
                json_str(&l.name),
                json_f64(l.mean_us),
                l.p50_us,
                l.p99_us
            );
            o.push_str(if i + 1 < self.latency.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        o.push_str("      ]\n    }");
        o
    }
}

/// Splits the `"runs"` array of an existing document into its top-level
/// run objects (raw JSON text, one string per run). Returns an empty
/// list for anything that does not look like a serve document.
fn split_runs(doc: &str) -> Vec<String> {
    let Some(key) = doc.find("\"runs\"") else {
        return Vec::new();
    };
    let Some(open) = doc[key..].find('[') else {
        return Vec::new();
    };
    let body = &doc[key + open + 1..];
    let mut runs = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(s) = start.take() {
                        runs.push(body[s..=i].to_string());
                    }
                }
            }
            ']' if depth == 0 => break,
            _ => {}
        }
    }
    runs
}

/// Extracts the `"mode"` value of a rendered run object.
fn run_mode(obj: &str) -> Option<String> {
    let key = obj.find("\"mode\"")?;
    let rest = &obj[key + 6..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_string())
}

/// Renders the full document from pre-rendered run objects.
fn render_document(runs: &[String]) -> String {
    let mut doc = String::new();
    doc.push_str("{\n  \"bench\": \"serve\",\n  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        // Re-indent merged runs that were captured without their leading
        // whitespace.
        if run.starts_with('{') {
            doc.push_str("    ");
        }
        doc.push_str(run);
        doc.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    doc.push_str("  ]\n}\n");
    doc
}

/// Merges `run` into `results/BENCH_serve.json`: existing runs of other
/// modes are preserved, a previous run of the same mode is replaced.
/// Returns the path written.
///
/// # Errors
///
/// Filesystem errors creating `results/` or writing the file.
///
/// # Panics
///
/// Panics if the rendered document fails JSON validation — a bug in
/// this module, not an environment condition.
pub fn merge_bench_serve(run: &ServeRun) -> std::io::Result<PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_serve.json");
    let mut runs: Vec<String> = match std::fs::read_to_string(&path) {
        Ok(existing) => split_runs(&existing)
            .into_iter()
            .filter(|r| run_mode(r).as_deref() != Some(run.mode.as_str()))
            .collect(),
        Err(_) => Vec::new(),
    };
    runs.push(run.to_json());
    // Deterministic document order regardless of which binary ran last.
    runs.sort_by_key(|r| run_mode(r).unwrap_or_default());
    let doc = render_document(&runs);
    mib_trace::validate_json(&doc).expect("BENCH_serve.json must be valid JSON");
    std::fs::write(&path, doc)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(mode: &str, requests: u64) -> ServeRun {
        ServeRun {
            mode: mode.to_string(),
            requests,
            clients: 4,
            tenants: 10,
            wall_seconds: 1.5,
            throughput_rps: requests as f64 / 1.5,
            verified_bitwise: requests / 100,
            outcomes: vec![("solved".into(), requests - 3), ("cancelled".into(), 3)],
            sheds: vec![("rate_limited".into(), 7), ("queue_full".into(), 2)],
            latency: vec![
                LatencySummary {
                    name: "e2e".into(),
                    mean_us: 1834.5,
                    p50_us: 1024,
                    p99_us: 16384,
                },
                LatencySummary {
                    name: "service".into(),
                    mean_us: 900.0,
                    p50_us: 512,
                    p99_us: 4096,
                },
            ],
            obs_overhead_pct: (mode == "net-closed").then_some(1.25),
        }
    }

    #[test]
    fn run_objects_are_valid_json() {
        let doc = render_document(&[sample("inprocess", 600).to_json()]);
        mib_trace::validate_json(&doc).expect("document must validate");
        assert!(doc.contains("\"mode\": \"inprocess\""));
        assert!(doc.contains("\"throughput_rps\": 400.0"));
    }

    #[test]
    fn split_recovers_each_run_and_mode() {
        let doc = render_document(&[
            sample("inprocess", 600).to_json(),
            sample("net-closed", 1_000_000).to_json(),
        ]);
        let runs = split_runs(&doc);
        assert_eq!(runs.len(), 2);
        assert_eq!(run_mode(&runs[0]).as_deref(), Some("inprocess"));
        assert_eq!(run_mode(&runs[1]).as_deref(), Some("net-closed"));
        assert!(runs[1].contains("\"requests\": 1000000"));
    }

    #[test]
    fn same_mode_replaces_other_modes_survive() {
        let first = render_document(&[
            sample("inprocess", 600).to_json(),
            sample("net-closed", 500).to_json(),
        ]);
        // Simulate the merge path without touching the filesystem.
        let mut runs: Vec<String> = split_runs(&first)
            .into_iter()
            .filter(|r| run_mode(r).as_deref() != Some("net-closed"))
            .collect();
        runs.push(sample("net-closed", 1_000_000).to_json());
        runs.sort_by_key(|r| run_mode(r).unwrap_or_default());
        let merged = render_document(&runs);
        mib_trace::validate_json(&merged).expect("merged document must validate");
        assert!(merged.contains("\"requests\": 600"), "other mode survives");
        assert!(merged.contains("\"requests\": 1000000"), "new run present");
        assert!(!merged.contains("\"requests\": 500"), "old run replaced");
    }

    #[test]
    fn scanner_survives_braces_inside_strings() {
        let tricky = r#"{ "bench": "serve", "runs": [ {"mode": "a{}[]\"x", "requests": 1} ] }"#;
        let runs = split_runs(tricky);
        assert_eq!(runs.len(), 1);
        assert_eq!(run_mode(&runs[0]).as_deref(), Some("a{}[]\\"));
    }
}
