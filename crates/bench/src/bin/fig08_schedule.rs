//! Figure 8: multi-issue network-instruction scheduling.
//!
//! The paper's example compiles the SVM domain's A-matrix multiplication
//! into a network program at C = 32 (192 nodes) and shows first-fit
//! reordering compressing 2072 issue slots to 271. This binary rebuilds
//! that experiment: same matrix kind, same width, before/after slot
//! counts, plus the factorization-schedule variant (Section IV.C) and the
//! prefetch ablation.

use std::fmt::Write as _;

use mib_compiler::elementwise::load_vec;
use mib_compiler::factor::{factor_kernel, plan_factor_exact};
use mib_compiler::spmv::{mac_spmv, SpmvOptions};
use mib_compiler::{schedule, Allocator, KernelBuilder, ScheduleOptions};
use mib_core::hbm::HbmStream;
use mib_core::machine::{HazardPolicy, Machine};
use mib_core::MibConfig;
use mib_problems::svm;
use mib_qp::kkt::KktMatrix;
use mib_sparse::ldl::LdlSymbolic;
use mib_sparse::order::{self, Ordering};

fn main() {
    let config = MibConfig::c32();
    let mut body = String::new();
    body.push_str(
        "== Figure 8: first-fit multi-issue instruction scheduling (C = 32, 192 nodes) ==\n\n",
    );

    // --- SpMV program for the SVM A matrix (the paper's example). ---
    let pr = svm(80, 160, 7);
    let a_csr = pr.a().to_csr();
    let xv = vec![1.0; pr.num_vars()];
    let build = |prefetch: bool| {
        let mut b = KernelBuilder::new("A_multiply", config.width, config.latency());
        let mut alloc = Allocator::new(config.width);
        let x = alloc.alloc(pr.num_vars());
        let y = alloc.alloc(pr.num_constraints());
        load_vec(&mut b, x, &xv);
        mac_spmv(
            &mut b,
            &mut alloc,
            &a_csr,
            x,
            y,
            false,
            SpmvOptions { prefetch },
        );
        b.finish()
    };
    let kernel = build(true);
    let single = schedule(
        &kernel,
        ScheduleOptions {
            multi_issue: false,
            ..Default::default()
        },
    );
    let multi = schedule(&kernel, ScheduleOptions::default());
    let _ = writeln!(
        body,
        "SVM A-matrix multiplication ({} logical network instructions):",
        kernel.len()
    );
    let _ = writeln!(
        body,
        "  before reordering (single issue): {:>6} cycles",
        single.slots()
    );
    let _ = writeln!(
        body,
        "  after  reordering (multi issue) : {:>6} cycles",
        multi.slots()
    );
    let _ = writeln!(
        body,
        "  compression: {:.1}x  (paper example: 2072 -> 271, 7.6x)",
        single.slots() as f64 / multi.slots() as f64
    );

    // Verify both execute identically and hazard-free.
    let run = |s: &mib_compiler::Schedule| {
        let mut m = Machine::new(config);
        m.run(
            &s.program,
            &mut HbmStream::new(s.hbm.clone()),
            HazardPolicy::Strict,
        )
        .expect("schedule is hazard-free");
        m
    };
    let m1 = run(&single);
    let m2 = run(&multi);
    assert_eq!(m1.regs(), m2.regs(), "reordering must not change results");
    body.push_str("  verified: both schedules produce identical register state\n\n");

    // --- Prefetch ablation (Section IV.A structural-hazard resolution). ---
    let no_pf = build(false);
    let multi_no_pf = schedule(&no_pf, ScheduleOptions::default());
    let _ = writeln!(
        body,
        "prefetch ablation: with prefetch {} cycles / {} instrs, without {} cycles / {} instrs",
        multi.slots(),
        kernel.len(),
        multi_no_pf.slots(),
        no_pf.len()
    );

    // --- Factorization schedule (Section IV.C: elimination-tree order). ---
    let rho = vec![0.1; pr.num_constraints()];
    let kkt = KktMatrix::assemble(pr.p(), pr.a(), 1e-6, &rho).expect("valid");
    let perm = order::compute(kkt.matrix(), Ordering::MinDegree).expect("square");
    let permuted = perm.sym_perm_upper(kkt.matrix()).expect("square");
    let sym = LdlSymbolic::new(&permuted).expect("symmetric");
    let mut fb = KernelBuilder::new("factor", config.width, config.latency());
    let mut alloc = Allocator::new(config.width);
    let (fl, y) = plan_factor_exact(&permuted, &sym, &mut alloc);
    factor_kernel(&mut fb, &permuted, &sym, &fl, y);
    let fk = fb.finish();
    let fsingle = schedule(
        &fk,
        ScheduleOptions {
            multi_issue: false,
            ..Default::default()
        },
    );
    let fmulti = schedule(&fk, ScheduleOptions::default());
    let _ = writeln!(
        body,
        "\nLDL^T factorization (etree-guided, {} logical instructions, L nnz = {}):",
        fk.len(),
        sym.l_nnz()
    );
    let _ = writeln!(body, "  before reordering: {:>7} cycles", fsingle.slots());
    let _ = writeln!(body, "  after  reordering: {:>7} cycles", fmulti.slots());
    let _ = writeln!(
        body,
        "  compression: {:.1}x (denser dependency graph than SpMV -> lower gain, as in the paper)",
        fsingle.slots() as f64 / fmulti.slots() as f64
    );
    mib_bench::emit_report("fig08_schedule", &body);
}
