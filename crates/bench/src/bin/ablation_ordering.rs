//! Ablation: fill-reducing ordering for the direct KKT factorization.
//!
//! DESIGN.md calls out the minimum-degree ordering as a substitution for
//! AMD; this ablation quantifies what the ordering buys: factor fill,
//! factorization FLOPs and on-machine factorization cycles under natural,
//! RCM and minimum-degree orderings.

use std::fmt::Write as _;

use mib_compiler::factor::{factor_kernel, plan_factor_exact};
use mib_compiler::{schedule, Allocator, KernelBuilder, ScheduleOptions};
use mib_core::MibConfig;
use mib_problems::{instance, Domain};
use mib_qp::kkt::KktMatrix;
use mib_sparse::ldl::LdlSymbolic;
use mib_sparse::order::{compute, Ordering};

fn main() {
    let config = MibConfig::c32();
    let mut body = String::new();
    body.push_str("== Ablation: fill-reducing ordering for the KKT factorization ==\n\n");
    for domain in [Domain::Portfolio, Domain::Mpc, Domain::Lasso] {
        let inst = instance(domain, 6);
        let pr = &inst.problem;
        let rho = vec![0.1; pr.num_constraints()];
        let kkt = KktMatrix::assemble(pr.p(), pr.a(), 1e-6, &rho).expect("valid");
        let _ = writeln!(
            body,
            "--- {domain} instance 6 (KKT dim {}, nnz {}) ---",
            kkt.dim(),
            kkt.matrix().nnz()
        );
        let _ = writeln!(
            body,
            "{:>12} {:>10} {:>12} {:>14}",
            "ordering", "L nnz", "factor FLOPs", "factor cycles"
        );
        for method in [Ordering::Natural, Ordering::Rcm, Ordering::MinDegree] {
            let perm = compute(kkt.matrix(), method).expect("square");
            let permuted = perm.sym_perm_upper(kkt.matrix()).expect("square");
            let sym = LdlSymbolic::new(&permuted).expect("symmetric");
            let f = sym.factor(&permuted).expect("quasi-definite");
            let mut b = KernelBuilder::new("factor", config.width, config.latency());
            let mut alloc = Allocator::new(config.width);
            let (fl, y) = plan_factor_exact(&permuted, &sym, &mut alloc);
            factor_kernel(&mut b, &permuted, &sym, &fl, y);
            let s = schedule(&b.finish(), ScheduleOptions::default());
            let _ = writeln!(
                body,
                "{:>12} {:>10} {:>12} {:>14}",
                format!("{method:?}"),
                sym.l_nnz(),
                f.flops(),
                s.slots()
            );
        }
        body.push('\n');
    }
    body.push_str("Minimum degree minimizes fill (and therefore both FLOPs and cycles),\n");
    body.push_str("matching the role AMD plays in the paper's compiler stack.\n");
    mib_bench::emit_report("ablation_ordering", &body);
}
