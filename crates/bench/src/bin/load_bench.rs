//! load_bench: a trace-driven, socket-level load generator for the
//! `mib-net` front-end.
//!
//! Scales the `serve_bench` request mix — five benchmark domains, two
//! tenant instances each, parametric `q`/bounds perturbations, warm
//! starts, tight deadlines, explicit cancels, plus portfolio-routed
//! traffic — to **a million requests over real TCP sockets**. Every
//! request is generated from a per-request seed, so any answer can be
//! re-derived after the fact: a deterministic sample of the Solved
//! replies is re-solved directly (same parameters, same template) and
//! compared **bitwise** — transported answers must be exactly the
//! in-process answers.
//!
//! Two drive modes, selectable with `--mode`:
//!
//! * **closed** (default) — each client keeps a fixed window of
//!   requests in flight and submits as answers return; measures peak
//!   sustainable throughput.
//! * **open** — each client submits on a fixed schedule regardless of
//!   completions (bounded only by a large in-flight cap); measures
//!   behavior under offered load. The default open rate is derived from
//!   the measured closed-loop throughput.
//!
//! Load shedding is explicit end to end: a shed request is answered
//! with a `Shed` frame carrying the reason and a retry hint, and the
//! client retries it after the hint. The run fails if any shed arrives
//! with an unexplained reason, if any protocol error occurs, or if any
//! request goes unanswered (a hung connection).
//!
//! A final phase prices the observability plane: the same closed-loop
//! workload runs on a fresh obs-disabled server and again on a fresh
//! obs-enabled one (admin listener up, a scraper thread pulling
//! `/metrics`, `/slo` and `/healthz` throughout). Full runs assert the
//! plane costs < 5% of closed-loop throughput and record the figure as
//! `obs_overhead_pct` on the `net-closed` run object; every run asserts
//! the quiesced admin `/metrics` scrape is byte-identical to the
//! in-process `Metrics::render()` snapshot.
//!
//! `--smoke` shrinks the run for `scripts/check.sh`: a few thousand
//! requests through both loop modes plus a rate-limited tenant phase
//! that must observe explicit `RateLimited` sheds. Smoke runs print
//! their report without touching `results/`; full runs merge their run
//! objects (modes `net-closed` / `net-open`) into
//! `results/BENCH_serve.json` next to `serve_bench`'s in-process run.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mib_bench::serve_json::{merge_bench_serve, LatencySummary, ServeRun};
use mib_net::{
    ClientEvent, EndpointSpec, EndpointTarget, NetClient, NetConfig, NetServer, ReplyCode,
    ShedReason, TenantAuth, WireReply,
};
use mib_problems::{instance, Domain};
use mib_qp::{Algorithm, Settings, Solver};
use mib_serve::{Histogram, ObsConfig, QpServer, ServeConfig, TenantPolicy, LATENCY_BUCKETS_US};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DOMAINS: [Domain; 5] = [
    Domain::Portfolio,
    Domain::Lasso,
    Domain::Huber,
    Domain::Mpc,
    Domain::Svm,
];
const TENANTS_PER_DOMAIN: usize = 2;
/// Direct endpoints 0..10, routed endpoints 10..15.
const DIRECT_ENDPOINTS: usize = DOMAINS.len() * TENANTS_PER_DOMAIN;
const ROUTED_ENDPOINTS: usize = DOMAINS.len();
/// Every `ROUTED_EVERY`-th request goes to a routed portfolio endpoint.
const ROUTED_EVERY: u64 = 8;
/// Seed base; request `i` is generated from `SEED_BASE + i`.
const SEED_BASE: u64 = 0x10ad_bec4;

const TOKEN_UNLIMITED: &[u8] = b"load-bench-unlimited";
const TOKEN_LIMITED: &[u8] = b"load-bench-limited";

/// Client-side view of one generated request.
struct GenRequest {
    endpoint: u32,
    deadline: Option<Duration>,
    cancel: bool,
    q: Option<Vec<f64>>,
    bounds: Option<(Vec<f64>, Vec<f64>)>,
    warm_start: Option<(Vec<f64>, Vec<f64>)>,
}

/// The problem/template context shared by generators and verifiers.
struct Mix {
    problems: Vec<mib_qp::Problem>,
    templates: Vec<Solver>,
    warm_points: Vec<(Vec<f64>, Vec<f64>)>,
    routed_problems: Vec<mib_qp::Problem>,
    /// Indexed `[portfolio][Algorithm::index()]`.
    routed_templates: Vec<[Solver; 2]>,
}

fn portfolio_settings(algorithm: Algorithm) -> Settings {
    let mut s = Settings::with_algorithm(algorithm);
    s.eps_abs = 1e-5;
    s.eps_rel = 1e-5;
    s.max_iter = match algorithm {
        Algorithm::Admm => 50_000,
        Algorithm::Pdqp => 2_000_000,
    };
    s
}

/// Regenerates request `i` of the trace — identical on every call, so a
/// sampled reply can be verified long after the request was sent.
fn generate(i: u64, mix: &Mix) -> GenRequest {
    let mut rng = StdRng::seed_from_u64(SEED_BASE.wrapping_add(i));
    if i % ROUTED_EVERY == ROUTED_EVERY - 1 {
        // Routed portfolio traffic: parametric only (mirrors
        // serve_bench's make_routed_request).
        let p = rng.gen_range(0..ROUTED_ENDPOINTS);
        let problem = &mix.routed_problems[p];
        let mut q = problem.q().to_vec();
        for qi in q.iter_mut() {
            *qi += 0.05 * (rng.gen::<f64>() - 0.5);
        }
        let bounds = (rng.gen::<f64>() < 0.3).then(|| {
            let l = problem.l().to_vec();
            let mut u = problem.u().to_vec();
            for ui in u.iter_mut() {
                if ui.is_finite() {
                    *ui += 0.1 * rng.gen::<f64>();
                }
            }
            (l, u)
        });
        return GenRequest {
            endpoint: (DIRECT_ENDPOINTS + p) as u32,
            deadline: None,
            cancel: false,
            q: Some(q),
            bounds,
            warm_start: None,
        };
    }
    // Direct tenant traffic (mirrors serve_bench's make_request).
    let t = rng.gen_range(0..DIRECT_ENDPOINTS);
    let problem = &mix.problems[t];
    let q = (rng.gen::<f64>() < 0.8).then(|| {
        let mut q = problem.q().to_vec();
        for qi in q.iter_mut() {
            *qi += 0.05 * (rng.gen::<f64>() - 0.5);
        }
        q
    });
    let bounds = (rng.gen::<f64>() < 0.3).then(|| {
        let l = problem.l().to_vec();
        let mut u = problem.u().to_vec();
        for ui in u.iter_mut() {
            if ui.is_finite() {
                *ui += 0.1 * rng.gen::<f64>();
            }
        }
        (l, u)
    });
    let deadline = match rng.gen_range(0..20usize) {
        0 => Some(Duration::from_micros(rng.gen_range(1..50u64))),
        1 | 2 => Some(Duration::from_secs(30)),
        _ => None,
    };
    let cancel = rng.gen::<f64>() < 0.01;
    let warm_start = (rng.gen::<f64>() < 0.1).then(|| mix.warm_points[t].clone());
    GenRequest {
        endpoint: t as u32,
        deadline,
        cancel,
        q,
        bounds,
        warm_start,
    }
}

/// Per-client tallies of one phase.
#[derive(Default)]
struct ClientStats {
    replies_by_code: [u64; 9],
    sheds_rate_limited: u64,
    sheds_over_share: u64,
    sheds_queue_full: u64,
    retries: u64,
    /// Sampled Solved replies kept for post-run verification.
    sampled: Vec<(u64, WireReply)>,
    /// Fatal events that must never happen.
    errors: Vec<String>,
    unanswered: u64,
}

struct PhaseResult {
    wall: Duration,
    completed: u64,
    e2e: Histogram<10>,
    stats: Vec<ClientStats>,
}

/// Drives `total` requests through `clients` connections.
///
/// `pace`: `None` = closed loop with a fixed in-flight window; `Some(d)`
/// = open loop with one submission per `d` per client.
#[allow(clippy::too_many_lines)]
fn run_phase(
    addr: std::net::SocketAddr,
    mix: &Mix,
    total: u64,
    clients: u64,
    pace: Option<Duration>,
    sample_every: u64,
    id_offset: u64,
) -> PhaseResult {
    let window: usize = if pace.is_some() { 4096 } else { 64 };
    let e2e = Histogram::<10>::new(LATENCY_BUCKETS_US);
    let started = Instant::now();
    let stats: Vec<ClientStats> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let e2e = &e2e;
            handles.push(s.spawn(move || {
                let mut st = ClientStats::default();
                let mut client =
                    NetClient::connect(addr, TOKEN_UNLIMITED).expect("connect load client");
                // In-flight bookkeeping: id -> (trace index, submit time).
                let mut inflight: HashMap<u64, (u64, Instant)> = HashMap::new();
                // This client's strided slice of the trace.
                let mut next_slot = c;
                let mut submitted = 0u64;
                let my_total = total / clients + u64::from(c < total % clients);
                let mut completed = 0u64;
                let phase_started = Instant::now();

                while completed < my_total {
                    // Submit while there is room (closed loop) or while
                    // the schedule says we are due (open loop).
                    let due = |submitted: u64| match pace {
                        None => true,
                        Some(d) => {
                            phase_started.elapsed()
                                >= d * u32::try_from(submitted).unwrap_or(u32::MAX)
                        }
                    };
                    while submitted < my_total && inflight.len() < window && due(submitted) {
                        let i = id_offset + next_slot;
                        next_slot += clients;
                        submitted += 1;
                        let g = generate(i, mix);
                        inflight.insert(i, (i, Instant::now()));
                        client
                            .submit(i, g.endpoint, g.deadline, g.q, g.bounds, g.warm_start)
                            .expect("submit over socket");
                        if g.cancel {
                            client.cancel(i).expect("cancel over socket");
                        }
                    }
                    // Drain one event (short timeout keeps the open-loop
                    // schedule honest).
                    let timeout = if pace.is_some() {
                        Duration::from_millis(1)
                    } else {
                        Duration::from_mins(1)
                    };
                    match client.recv_timeout(timeout) {
                        Some(ClientEvent::Reply { request_id, reply }) => {
                            let Some((i, at)) = inflight.remove(&request_id) else {
                                st.errors.push(format!("reply for unknown id {request_id}"));
                                continue;
                            };
                            e2e.observe_duration(at.elapsed());
                            st.replies_by_code[reply_code_index(reply.code)] += 1;
                            if reply.code == ReplyCode::Solved && i % sample_every == 0 {
                                st.sampled.push((i, reply));
                            }
                            completed += 1;
                        }
                        Some(ClientEvent::Shed {
                            request_id,
                            reason,
                            retry_after_us,
                            ..
                        }) => {
                            match reason {
                                ShedReason::RateLimited => st.sheds_rate_limited += 1,
                                ShedReason::OverShare => st.sheds_over_share += 1,
                                ShedReason::QueueFull => st.sheds_queue_full += 1,
                            }
                            // Retry after the hint: a shed is explicit
                            // backpressure, not an answer.
                            let Some((i, _)) = inflight.remove(&request_id) else {
                                st.errors.push(format!("shed for unknown id {request_id}"));
                                continue;
                            };
                            std::thread::sleep(
                                Duration::from_micros(retry_after_us.min(5_000))
                                    .max(Duration::from_micros(100)),
                            );
                            let g = generate(i, mix);
                            inflight.insert(i, (i, Instant::now()));
                            st.retries += 1;
                            client
                                .submit(i, g.endpoint, g.deadline, g.q, g.bounds, g.warm_start)
                                .expect("re-submit over socket");
                        }
                        Some(ClientEvent::Error { code, message }) => {
                            st.errors.push(format!("server error {code}: {message}"));
                            break;
                        }
                        Some(ClientEvent::Goodbye | ClientEvent::Disconnected) => {
                            st.errors.push("connection ended mid-phase".into());
                            break;
                        }
                        None if pace.is_some() => {}
                        None => {
                            st.errors.push(format!(
                                "timed out with {} requests in flight",
                                inflight.len()
                            ));
                            break;
                        }
                    }
                }
                st.unanswered = inflight.len() as u64;
                // Clean half-close: no more requests, server confirms.
                if st.errors.is_empty() && st.unanswered == 0 {
                    client.goodbye().expect("goodbye over socket");
                    loop {
                        match client.recv_timeout(Duration::from_secs(30)) {
                            Some(ClientEvent::Goodbye) => break,
                            Some(ClientEvent::Disconnected) | None => {
                                st.errors.push("no Goodbye confirmation".into());
                                break;
                            }
                            Some(_) => {}
                        }
                    }
                }
                st
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed();
    let completed = stats
        .iter()
        .map(|s| s.replies_by_code.iter().sum::<u64>())
        .sum();
    PhaseResult {
        wall,
        completed,
        e2e,
        stats,
    }
}

fn reply_code_index(code: ReplyCode) -> usize {
    match code {
        ReplyCode::Solved => 0,
        ReplyCode::MaxIterations => 1,
        ReplyCode::PrimalInfeasible => 2,
        ReplyCode::DualInfeasible => 3,
        ReplyCode::TimedOut => 4,
        ReplyCode::Cancelled => 5,
        ReplyCode::Expired => 6,
        ReplyCode::CancelledQueued => 7,
        ReplyCode::Failed => 8,
    }
}

const REPLY_CODE_NAMES: [&str; 9] = [
    "solved",
    "max_iterations",
    "primal_infeasible",
    "dual_infeasible",
    "timed_out",
    "cancelled",
    "expired_queued",
    "cancelled_queued",
    "failed",
];

/// Bitwise-verifies one sampled Solved reply against a direct solve of
/// the regenerated request. Routed samples are checked against both
/// backend templates (the wire reply does not say which one served it);
/// matching either is exact agreement.
fn verify_sample(i: u64, reply: &WireReply, mix: &Mix) -> Result<(), String> {
    let g = generate(i, mix);
    let endpoint = g.endpoint as usize;
    let solve_direct = |template: &Solver, problem: &mib_qp::Problem| {
        let mut solver = template.clone();
        let q = g.q.clone().unwrap_or_else(|| problem.q().to_vec());
        let (l, u) = g
            .bounds
            .clone()
            .unwrap_or_else(|| (problem.l().to_vec(), problem.u().to_vec()));
        solver.update_q(&q).expect("reference update_q");
        solver
            .update_bounds(&l, &u)
            .expect("reference update_bounds");
        solver.reset();
        if let Some((x, y)) = &g.warm_start {
            solver.warm_start(x, y);
        }
        solver.solve()
    };
    let matches = |result: &mib_qp::SolveResult| {
        result.status == mib_qp::Status::Solved
            && result.iterations == reply.iterations as usize
            && result.obj_val.to_bits() == reply.obj_val.to_bits()
            && result.x.len() == reply.x.len()
            && result
                .x
                .iter()
                .zip(&reply.x)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && result
                .y
                .iter()
                .zip(&reply.y)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    };
    if endpoint < DIRECT_ENDPOINTS {
        let result = solve_direct(&mix.templates[endpoint], &mix.problems[endpoint]);
        if matches(&result) {
            Ok(())
        } else {
            Err(format!(
                "request {i} (endpoint {endpoint}): wire answer differs from the direct solve \
                 (obj {:e} vs {:e}, iters {} vs {})",
                reply.obj_val, result.obj_val, reply.iterations, result.iterations
            ))
        }
    } else {
        let p = endpoint - DIRECT_ENDPOINTS;
        let problem = &mix.routed_problems[p];
        let ok = mix.routed_templates[p]
            .iter()
            .any(|template| matches(&solve_direct(template, problem)));
        if ok {
            Ok(())
        } else {
            Err(format!(
                "routed request {i} (portfolio {p}): wire answer matches neither backend's \
                 direct solve"
            ))
        }
    }
}

/// Builds the client-side problem/template context. Pure derivation
/// from the instance generators — no server state, so a fresh server
/// carrying the same registrations can be verified against it.
fn build_mix() -> Mix {
    let mut problems = Vec::new();
    let mut templates = Vec::new();
    for domain in DOMAINS {
        for index in 0..TENANTS_PER_DOMAIN {
            let spec = instance(domain, index);
            templates.push(
                Solver::new(spec.problem.clone(), Settings::default()).expect("reference template"),
            );
            problems.push(spec.problem);
        }
    }
    let mut routed_problems = Vec::new();
    let mut routed_templates = Vec::new();
    for domain in DOMAINS {
        let spec = instance(domain, TENANTS_PER_DOMAIN);
        routed_templates.push([
            Solver::new(spec.problem.clone(), portfolio_settings(Algorithm::Admm))
                .expect("admm template"),
            Solver::new(spec.problem.clone(), portfolio_settings(Algorithm::Pdqp))
                .expect("pdqp template"),
        ]);
        routed_problems.push(spec.problem);
    }
    let warm_points: Vec<(Vec<f64>, Vec<f64>)> = templates
        .iter()
        .map(|t| {
            let r = t.clone().solve();
            (r.x, r.y)
        })
        .collect();
    Mix {
        problems,
        templates,
        warm_points,
        routed_problems,
        routed_templates,
    }
}

/// Boots a fresh serving stack carrying the full tenant mix behind a
/// socket. With `obs` the observability plane is enabled and the admin
/// listener rides along on its own ephemeral port.
///
/// Note the process-global consequence: the first obs-enabled server
/// turns tracing on for the rest of the process, so any obs-disabled
/// measurement must happen before this is ever called with `obs: true`.
fn boot_server(obs: bool) -> (NetServer, Arc<QpServer>) {
    let config = ServeConfig {
        queue_capacity: 32,
        max_shards: 24,
        obs: ObsConfig {
            enabled: obs,
            ..ObsConfig::default()
        },
        ..ServeConfig::default()
    };
    let qp = Arc::new(QpServer::new(config));
    let mut endpoints = Vec::new();
    for domain in DOMAINS {
        for index in 0..TENANTS_PER_DOMAIN {
            let spec = instance(domain, index);
            let (num_vars, num_constraints) =
                (spec.problem.num_vars(), spec.problem.num_constraints());
            let id = qp
                .register(spec.problem, Settings::default())
                .expect("tenant registration");
            endpoints.push(EndpointSpec {
                target: EndpointTarget::Tenant(id),
                name: format!("{domain:?}[{index}]"),
                num_vars,
                num_constraints,
            });
        }
    }
    for domain in DOMAINS {
        let spec = instance(domain, TENANTS_PER_DOMAIN);
        let id = qp
            .register_portfolio(
                &spec.problem,
                vec![
                    portfolio_settings(Algorithm::Admm),
                    portfolio_settings(Algorithm::Pdqp),
                ],
            )
            .expect("portfolio registration");
        endpoints.push(EndpointSpec {
            target: EndpointTarget::Portfolio(id),
            name: format!("{domain:?}[{TENANTS_PER_DOMAIN}:routed]"),
            num_vars: spec.problem.num_vars(),
            num_constraints: spec.problem.num_constraints(),
        });
    }
    let auth = vec![
        TenantAuth {
            token: TOKEN_UNLIMITED.to_vec(),
            label: "load-unlimited".into(),
            policy: TenantPolicy::default(),
        },
        TenantAuth {
            token: TOKEN_LIMITED.to_vec(),
            label: "load-limited".into(),
            policy: TenantPolicy {
                rate_per_sec: 50.0,
                burst: 10.0,
                weight: 1.0,
            },
        },
    ];
    let cfg = NetConfig {
        admin_addr: obs.then(|| "127.0.0.1:0".to_string()),
        ..NetConfig::default()
    };
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&qp), endpoints, auth, cfg)
        .expect("bind load server");
    (server, qp)
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|p| args.get(p + 1))
            .and_then(|v| v.parse::<u64>().ok())
    };
    let total: u64 = flag("--requests").unwrap_or(if smoke { 1_500 } else { 1_000_000 });
    let clients: u64 = flag("--clients").unwrap_or(if smoke { 2 } else { 4 });
    let open_total: u64 = flag("--open-requests").unwrap_or(total / 10);
    let sample_every: u64 = flag("--sample-every").unwrap_or(if smoke { 50 } else { 1_000 });

    eprintln!(
        "load_bench: {total} closed-loop + {open_total} open-loop requests, {clients} clients{}",
        if smoke { " [smoke]" } else { "" }
    );

    // ---- Server side: the serve_bench tenant mix behind a socket. ----
    let mix = build_mix();
    let (mut server, qp) = boot_server(false);
    let addr = server.local_addr();

    let mut body = String::new();
    body.push_str("== load_bench: socket-level load against the mib-net front-end ==\n\n");
    let mut runs: Vec<(String, PhaseResult)> = Vec::new();

    // ---- Phase 1: closed loop (peak sustainable throughput). ----
    let closed = run_phase(addr, &mix, total, clients, None, sample_every, 0);
    let closed_rps = closed.completed as f64 / closed.wall.as_secs_f64();
    runs.push(("net-closed".into(), closed));

    // ---- Phase 2: open loop at ~70% of the measured closed rate. ----
    let pace = Duration::from_secs_f64(1.0 / (0.7 * closed_rps / clients as f64));
    let open = run_phase(
        addr,
        &mix,
        open_total,
        clients,
        Some(pace),
        sample_every,
        total,
    );
    runs.push(("net-open".into(), open));

    // ---- Phase 3 (smoke): a rate-limited tenant MUST see sheds. ----
    if smoke {
        let mut client = NetClient::connect(addr, TOKEN_LIMITED).expect("limited client");
        let burst = 200u64;
        let mut sheds = 0u64;
        let mut answered = 0u64;
        for k in 0..burst {
            client
                .submit(k, 0, None, None, None, None)
                .expect("limited submit");
        }
        for _ in 0..burst {
            match client.recv_timeout(Duration::from_mins(1)) {
                Some(ClientEvent::Reply { .. }) => answered += 1,
                Some(ClientEvent::Shed {
                    reason,
                    retry_after_us,
                    ..
                }) => {
                    assert_eq!(
                        reason,
                        ShedReason::RateLimited,
                        "the limited tenant's sheds must be rate-limit sheds"
                    );
                    assert!(retry_after_us > 0, "sheds carry retry hints");
                    sheds += 1;
                }
                other => panic!("limited tenant: unexpected event {other:?}"),
            }
        }
        assert!(
            sheds > 0,
            "a 50 req/s tenant blasting {burst} requests must be shed"
        );
        assert_eq!(answered + sheds, burst, "every request gets an answer");
        let _ = writeln!(
            body,
            "rate-limit gate: {answered} admitted, {sheds} explicit RateLimited sheds \
             (burst {burst}, policy 50 req/s)\n"
        );
    }

    server.shutdown();

    // ---- Verification: hard gates, then sampled bitwise parity. ----
    let mut verified = 0u64;
    for (mode, phase) in &runs {
        for st in &phase.stats {
            assert!(
                st.errors.is_empty(),
                "[{mode}] protocol/connection errors: {:?}",
                st.errors
            );
            assert_eq!(st.unanswered, 0, "[{mode}] requests left unanswered");
            assert_eq!(
                st.sheds_rate_limited, 0,
                "[{mode}] the unlimited tenant must never be rate-limited"
            );
            // Queue-full and over-share sheds are legitimate explicit
            // backpressure under load; they were all retried to
            // completion (completed == offered), so nothing is lost.
            let failed = st.replies_by_code[reply_code_index(ReplyCode::Failed)];
            assert_eq!(failed, 0, "[{mode}] no request may fail validation");
        }
        let offered: u64 = phase.completed;
        let expected = if mode == "net-closed" {
            total
        } else {
            open_total
        };
        assert_eq!(offered, expected, "[{mode}] every request must complete");
        for st in &phase.stats {
            for (i, reply) in &st.sampled {
                verify_sample(*i, reply, &mix).expect("bitwise verification");
                verified += 1;
            }
        }
    }

    // ---- Report. ----
    let metrics = qp.metrics();
    let c = &metrics.counters;
    let load = |a: &std::sync::atomic::AtomicU64| a.load(Ordering::Relaxed);
    assert_eq!(
        load(&c.net_frame_decode_errors),
        0,
        "zero protocol errors across the whole run"
    );
    let mut serve_runs = Vec::new();
    for (mode, phase) in &runs {
        let rps = phase.completed as f64 / phase.wall.as_secs_f64();
        let _ = writeln!(
            body,
            "{mode}: {} requests in {:.2} s  ({rps:.0} req/s, {clients} clients)",
            phase.completed,
            phase.wall.as_secs_f64()
        );
        let mut outcomes = Vec::new();
        let mut tally = [0u64; 9];
        let (mut rate_limited, mut over_share, mut queue_full, mut retries) = (0, 0, 0, 0u64);
        for st in &phase.stats {
            for (k, n) in st.replies_by_code.iter().enumerate() {
                tally[k] += n;
            }
            rate_limited += st.sheds_rate_limited;
            over_share += st.sheds_over_share;
            queue_full += st.sheds_queue_full;
            retries += st.retries;
        }
        for (k, name) in REPLY_CODE_NAMES.iter().enumerate() {
            if tally[k] > 0 {
                let _ = writeln!(body, "  {name:<17} {:>8}", tally[k]);
                outcomes.push(((*name).to_string(), tally[k]));
            }
        }
        let _ = writeln!(
            body,
            "  sheds: {queue_full} queue_full, {over_share} over_share, {rate_limited} \
             rate_limited ({retries} retried to completion)"
        );
        let _ = writeln!(
            body,
            "  e2e (client):  mean {:>8.1} us  p50 <= {:>6}  p99 <= {:>8}",
            phase.e2e.mean(),
            phase.e2e.quantile_bound(0.5),
            phase.e2e.quantile_bound(0.99)
        );
        let _ = writeln!(body);
        serve_runs.push(ServeRun {
            mode: mode.clone(),
            requests: phase.completed,
            clients,
            tenants: (DIRECT_ENDPOINTS + ROUTED_ENDPOINTS) as u64,
            wall_seconds: phase.wall.as_secs_f64(),
            throughput_rps: rps,
            verified_bitwise: phase.stats.iter().map(|s| s.sampled.len() as u64).sum(),
            outcomes,
            sheds: vec![
                ("queue_full".to_string(), queue_full),
                ("over_share".to_string(), over_share),
                ("rate_limited".to_string(), rate_limited),
            ],
            latency: vec![
                LatencySummary {
                    name: "e2e_client".into(),
                    mean_us: phase.e2e.mean(),
                    p50_us: phase.e2e.quantile_bound(0.5),
                    p99_us: phase.e2e.quantile_bound(0.99),
                },
                LatencySummary {
                    name: "queue_wait".into(),
                    mean_us: metrics.queue_wait.mean(),
                    p50_us: metrics.queue_wait.quantile_bound(0.5),
                    p99_us: metrics.queue_wait.quantile_bound(0.99),
                },
                LatencySummary {
                    name: "service".into(),
                    mean_us: metrics.service.mean(),
                    p50_us: metrics.service.quantile_bound(0.5),
                    p99_us: metrics.service.quantile_bound(0.99),
                },
            ],
            obs_overhead_pct: None,
        });
    }
    let _ = writeln!(
        body,
        "bitwise parity: {verified}/{verified} sampled answers identical to direct solves \
         (1 in {sample_every})"
    );
    let _ = writeln!(
        body,
        "wire traffic: {} frames received, {} sent, {} decode errors, {} connections",
        load(&c.net_frames_received),
        load(&c.net_frames_sent),
        load(&c.net_frame_decode_errors),
        load(&c.net_connections_opened),
    );
    let _ = writeln!(
        body,
        "admission:    {} admitted, {} shed (rate {} / share {} / queue {})",
        load(&c.admitted),
        load(&c.shed_rate_limited) + load(&c.shed_over_share) + load(&c.shed_queue_full),
        load(&c.shed_rate_limited),
        load(&c.shed_over_share),
        load(&c.shed_queue_full),
    );
    body.push_str("\n-- server metrics snapshot --\n");
    body.push_str(&metrics.render());

    // ---- Phase 4: observability overhead + admin-plane scrape. ----
    //
    // The same closed-loop workload runs twice on *fresh* servers: first
    // with the obs plane off (reference), then with the full plane on —
    // tracing, tail sampling, rolling SLO windows — while a scraper
    // thread hammers the admin listener's `/metrics` and `/slo` the
    // whole time. The obs-off reference must come first: constructing an
    // obs-enabled server flips the process-global trace flag for good.
    let obs_total = if smoke { 600 } else { (total / 40).max(10_000) };
    let warmup = (obs_total / 10).max(200);
    // Best-of-N on both sides: single-core machines timeshare the
    // shards, the clients and the scraper, so individual reps are noisy
    // (±10 pp run to run) and slow drift penalizes whichever side runs
    // later; many short reps give each side more draws at its true peak
    // rate, which is the comparable quantity.
    let reps = if smoke { 1 } else { 8 };
    let check_phase = |label: &str, phase: &PhaseResult| {
        for st in &phase.stats {
            assert!(
                st.errors.is_empty(),
                "[{label}] protocol/connection errors: {:?}",
                st.errors
            );
            assert_eq!(st.unanswered, 0, "[{label}] requests left unanswered");
        }
        assert_eq!(
            phase.completed, obs_total,
            "[{label}] every request must complete"
        );
    };
    let (mut ref_server, _ref_qp) = boot_server(false);
    let ref_addr = ref_server.local_addr();
    run_phase(ref_addr, &mix, warmup, clients, None, u64::MAX, 0);
    let mut ref_rps = 0.0f64;
    for _ in 0..reps {
        let phase = run_phase(ref_addr, &mix, obs_total, clients, None, u64::MAX, 0);
        check_phase("obs-off", &phase);
        ref_rps = ref_rps.max(phase.completed as f64 / phase.wall.as_secs_f64());
    }
    ref_server.shutdown();

    let (mut obs_server, obs_qp) = boot_server(true);
    let obs_addr = obs_server.local_addr();
    let admin = obs_server
        .admin_addr()
        .expect("obs server exposes an admin listener");
    eprintln!("admin plane listening on http://{admin} (/metrics /slo /healthz /trace/<id>)");
    let stop = Arc::new(AtomicBool::new(false));
    let scrapes = Arc::new(AtomicU64::new(0));
    let scraper = {
        let (stop, scrapes) = (Arc::clone(&stop), Arc::clone(&scrapes));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for path in ["/metrics", "/slo", "/healthz"] {
                    if let Ok((status, body)) = mib_obs::http_get(admin, path) {
                        assert!(
                            status == 200 || (path == "/healthz" && status == 503),
                            "admin {path} returned {status}: {body}"
                        );
                        scrapes.fetch_add(1, Ordering::Relaxed);
                    }
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        })
    };
    run_phase(obs_addr, &mix, warmup, clients, None, u64::MAX, 0);
    let mut obs_rps = 0.0f64;
    for _ in 0..reps {
        let phase = run_phase(obs_addr, &mix, obs_total, clients, None, u64::MAX, 0);
        check_phase("obs-on", &phase);
        obs_rps = obs_rps.max(phase.completed as f64 / phase.wall.as_secs_f64());
    }
    stop.store(true, Ordering::Relaxed);
    scraper.join().expect("scraper thread");
    let overhead_pct = (ref_rps - obs_rps) / ref_rps * 100.0;

    // Quiesced cross-checks: the admin scrape must be byte-identical to
    // the in-process snapshot (retry while writer-thread counters
    // settle), and `/healthz` must report a coherent verdict.
    let mut scrape_matches = false;
    for _ in 0..100 {
        let (status, scraped) = mib_obs::http_get(admin, "/metrics").expect("admin /metrics");
        assert_eq!(status, 200, "admin /metrics must answer 200");
        if scraped == obs_qp.metrics().render() {
            scrape_matches = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        scrape_matches,
        "admin /metrics must converge to the exact in-process Metrics::render() bytes"
    );
    let (hz_status, hz_body) = mib_obs::http_get(admin, "/healthz").expect("admin /healthz");
    assert!(
        (hz_status == 200 && hz_body.starts_with("ok"))
            || (hz_status == 503 && hz_body.starts_with("shedding")),
        "admin /healthz verdict must be coherent, got {hz_status}: {hz_body}"
    );
    let (slo_status, slo_body) = mib_obs::http_get(admin, "/slo").expect("admin /slo");
    assert!(
        slo_status == 200 && slo_body.contains("mib_slo_burn_rate"),
        "admin /slo must expose burn rates, got {slo_status}"
    );
    obs_server.shutdown();

    let _ = writeln!(
        body,
        "\nobs overhead: {obs_total} closed-loop requests, obs off {ref_rps:.0} req/s vs obs on \
         {obs_rps:.0} req/s => {overhead_pct:+.2}% ({} admin scrapes mid-run, /healthz {})",
        scrapes.load(Ordering::Relaxed),
        hz_body.lines().next().unwrap_or(""),
    );
    if !smoke {
        assert!(
            overhead_pct < 5.0,
            "full observability must cost < 5% closed-loop throughput, measured {overhead_pct:.2}%"
        );
        if let Some(run) = serve_runs.iter_mut().find(|r| r.mode == "net-closed") {
            run.obs_overhead_pct = Some(overhead_pct);
        }
    }

    if smoke {
        println!("{body}");
        eprintln!("(smoke mode: results/BENCH_serve.json not rewritten)");
    } else {
        mib_bench::emit_report("load_trace", &body);
        for run in &serve_runs {
            match merge_bench_serve(run) {
                Ok(path) => eprintln!("({} run merged into {})", run.mode, path.display()),
                Err(e) => eprintln!("warning: could not write BENCH_serve.json: {e}"),
            }
        }
    }
}
