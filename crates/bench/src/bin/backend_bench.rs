//! backend_bench: per-domain convergence comparison of the solver
//! backends (ADMM vs restarted-PDHG "PDQP") on the benchmark suite.
//!
//! For every domain the harness solves suite instances cold under each
//! [`Algorithm`] and records iterations and wall time to the shared
//! termination tolerance. The report is machine-diffable JSON
//! (`results/BENCH_backends.json`): stable key order, one run object per
//! (domain, instance, backend); iteration counts are deterministic,
//! wall-clock fields are environment-dependent.
//!
//! The run doubles as a correctness gate (`scripts/check.sh --smoke`):
//! ADMM must converge on every instance it benchmarks, and PDQP must
//! reach the same tolerance on every instance where ADMM does.

use std::fmt::Write as _;
use std::time::Instant;

use mib_problems::{instance, Domain};
use mib_qp::{Algorithm, Settings, Solver, Status};

/// Suite indices exercised per domain (smoke keeps the gate fast).
const SMOKE_INDICES: &[usize] = &[0];
const FULL_INDICES: &[usize] = &[0, 4, 9];

/// Iteration cap per backend. First-order PDQP takes far more (cheap)
/// iterations than ADMM takes (factorized) ones; both caps are sized so
/// every convergent suite problem terminates by tolerance, not by cap.
fn settings_for(algorithm: Algorithm) -> Settings {
    let mut s = Settings::with_algorithm(algorithm);
    s.max_iter = match algorithm {
        Algorithm::Admm => 20_000,
        Algorithm::Pdqp => 2_000_000,
    };
    s
}

/// One cold solve of one instance under one backend.
struct Run {
    domain: Domain,
    index: usize,
    n: usize,
    m: usize,
    algorithm: Algorithm,
    status: Status,
    iterations: usize,
    micros: u128,
    prim_res: f64,
    dual_res: f64,
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        if !s.contains(['.', 'e', 'E']) {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let indices = if smoke { SMOKE_INDICES } else { FULL_INDICES };

    let mut runs: Vec<Run> = Vec::new();
    for domain in Domain::all() {
        for &index in indices {
            let spec = instance(domain, index);
            for algorithm in Algorithm::all() {
                let mut solver = Solver::new(spec.problem.clone(), settings_for(algorithm))
                    .expect("benchmark instance is valid");
                let started = Instant::now();
                let result = solver.solve();
                let wall = started.elapsed();
                assert_eq!(
                    result.algorithm, algorithm,
                    "backend identity must round-trip"
                );
                runs.push(Run {
                    domain,
                    index,
                    n: spec.problem.num_vars(),
                    m: spec.problem.num_constraints(),
                    algorithm,
                    status: result.status,
                    iterations: result.iterations,
                    micros: wall.as_micros(),
                    prim_res: result.prim_res,
                    dual_res: result.dual_res,
                });
            }
        }
    }

    // Correctness gate: the ADMM reference must converge everywhere, and
    // PDQP must reach the same tolerance on every ADMM-convergent
    // instance (the suite has no infeasible problems).
    for pair in runs.chunks(Algorithm::all().len()) {
        let admm = &pair[0];
        assert_eq!(
            admm.status,
            Status::Solved,
            "ADMM failed on {}[{}]",
            admm.domain,
            admm.index
        );
        for other in &pair[1..] {
            assert_eq!(
                other.status,
                Status::Solved,
                "{} failed on {}[{}] where ADMM converged ({} iterations, residuals {:.3e}/{:.3e})",
                other.algorithm,
                other.domain,
                other.index,
                other.iterations,
                other.prim_res,
                other.dual_res
            );
        }
    }

    let mut json = String::from("{\"bench\":\"backends\",");
    let _ = write!(
        json,
        "\"mode\":\"{}\",\"eps_abs\":1e-3,\"eps_rel\":1e-3,\"runs\":[",
        if smoke { "smoke" } else { "full" }
    );
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"domain\":\"{}\",\"index\":{},\"n\":{},\"m\":{},\"backend\":\"{}\",\
             \"converged\":{},\"iterations\":{},\"solve_time_us\":{},\
             \"prim_res\":{},\"dual_res\":{}}}",
            r.domain,
            r.index,
            r.n,
            r.m,
            r.algorithm,
            r.status == Status::Solved,
            r.iterations,
            r.micros,
            json_f64(r.prim_res),
            json_f64(r.dual_res)
        );
    }
    json.push_str("]}");
    mib_trace::validate_json(&json).expect("backend report must be valid JSON");

    println!("{json}");
    if smoke {
        // Smoke runs are correctness gates; only the full suite refreshes
        // the committed baseline report.
        eprintln!("(smoke mode: results/BENCH_backends.json not rewritten)");
    } else {
        let dir = std::path::Path::new("results");
        if std::fs::create_dir_all(dir).is_ok() {
            let path = dir.join("BENCH_backends.json");
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("(written to {})", path.display());
            }
        }
    }
}
