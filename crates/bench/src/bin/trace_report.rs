//! Trace report: one problem per benchmark domain, solved on both KKT
//! backends with tracing enabled, plus a cached compile and one serve
//! request each, exporting a Chrome trace-event JSON per domain.
//!
//! Written artifacts:
//!
//! * `results/trace_report.txt` — deterministic summary: fixed seeds,
//!   iteration counts, residuals and event counts only. No wall-clock
//!   quantities appear, so the committed file is stable across runs.
//! * `results/<domain>.trace.json` — the merged per-domain trace in
//!   Chrome trace-event format (load into Perfetto / `chrome://tracing`).
//!   These carry timestamps and are not committed (gitignored).
//!
//! The binary doubles as an end-to-end check: per-iteration residual
//! events must match the returned [`SolveResult`] bitwise, serve spans
//! must nest the solver's spans on the worker thread, and every exported
//! JSON must validate. `--smoke` restricts the run to the first domain
//! and skips the committed report (used by `scripts/check.sh`).

use std::fmt::Write as _;

use mib_bench::eval_settings;
use mib_compiler::ProgramCache;
use mib_core::MibConfig;
use mib_problems::{instance, Domain};
use mib_qp::{KktBackend, SolveTrace, Solver};
use mib_serve::{QpServer, Request, ServeConfig};
use mib_trace::{Category, Event, Trace};

/// Merges `seg` into `acc` (first segment becomes the accumulator).
fn merge_into(acc: &mut Option<Trace>, seg: Trace) {
    match acc {
        Some(t) => t.merge(seg),
        None => *acc = Some(seg),
    }
}

/// Runs one traced segment: enables tracing around `f`, then drains.
fn traced_segment<R>(f: impl FnOnce() -> R) -> (R, Trace) {
    mib_trace::clear();
    mib_trace::enable();
    let out = f();
    mib_trace::disable();
    (out, mib_trace::take())
}

fn solve_segment(body: &mut String, domain: Domain, backend: KktBackend) -> Trace {
    let inst = instance(domain, 0);
    let (result, seg) = traced_segment(|| {
        let mut solver =
            Solver::new(inst.problem.clone(), eval_settings(backend)).expect("solver setup");
        solver.solve()
    });
    assert_eq!(seg.dropped(), 0, "{domain}/{backend:?}: trace overflow");

    let telemetry = SolveTrace::collect(&seg);
    let last = telemetry
        .last_iteration()
        .unwrap_or_else(|| panic!("{domain}/{backend:?}: no iteration events"));
    // The committed guarantee: the trace's terminating residual event is
    // the same f64s the solver returned, bit for bit.
    assert_eq!(
        (last.prim_res.to_bits(), last.dual_res.to_bits()),
        (result.prim_res.to_bits(), result.dual_res.to_bits()),
        "{domain}/{backend:?}: residual events must match the result bitwise"
    );
    assert_eq!(last.iter as usize, result.iterations);

    let _ = writeln!(
        body,
        "  {:<9} status={:<12} iters={:<5} prim_res={:.6e} dual_res={:.6e}",
        format!("{backend:?}"),
        format!("{:?}", result.status),
        result.iterations,
        result.prim_res,
        result.dual_res,
    );
    let _ = writeln!(
        body,
        "            events: iteration={} rho_update={} phase={} pcg_iters={}",
        telemetry.iterations.len(),
        telemetry.rho_updates.len(),
        telemetry.phases.len(),
        telemetry.total_pcg_iters(),
    );
    seg
}

fn compile_segment(body: &mut String, domain: Domain, config: MibConfig) -> Trace {
    let inst = instance(domain, 0);
    let settings = eval_settings(KktBackend::Direct);
    let (lowered, seg) = traced_segment(|| {
        let mut cache = ProgramCache::new();
        let lowered = cache
            .lower_cached(&inst.problem, &settings, config)
            .expect("lowering");
        // Second request hits the cache: the trace records both accesses.
        cache
            .lower_cached(&inst.problem, &settings, config)
            .expect("cached lowering");
        lowered
    });
    assert_eq!(seg.dropped(), 0, "{domain}/compile: trace overflow");

    let hits: Vec<bool> = seg
        .records()
        .filter_map(|r| match r.event {
            Event::CacheAccess { hit, .. } => Some(hit),
            _ => None,
        })
        .collect();
    assert_eq!(hits, vec![false, true], "{domain}: miss then hit");
    let quality = seg
        .records()
        .filter(|r| matches!(r.event, Event::ScheduleQuality { .. }))
        .count();
    let _ = writeln!(
        body,
        "  compile   iteration_slots={} logical={} forced_appends={} \
         schedule_events={quality} cache=miss,hit",
        lowered.iteration.slots(),
        lowered.iteration.logical_count,
        lowered.iteration.forced_appends,
    );
    seg
}

fn serve_segment(body: &mut String, domain: Domain) -> Trace {
    let inst = instance(domain, 0);
    let num_vars = inst.problem.num_vars();
    let (response, seg) = traced_segment(|| {
        let server = QpServer::new(ServeConfig {
            workers_per_shard: 1,
            ..ServeConfig::default()
        });
        let tenant = server
            .register(inst.problem.clone(), eval_settings(KktBackend::Direct))
            .expect("register");
        let response = server
            .submit(tenant, Request::with_q(vec![0.01; num_vars]))
            .expect("submit")
            .wait();
        server.shutdown();
        response
    });
    assert!(
        response.outcome.is_solved(),
        "{domain}: serve request failed: {:?}",
        response.outcome
    );
    assert_eq!(seg.dropped(), 0, "{domain}/serve: trace overflow");

    // Serve spans must nest the solver's spans on the worker thread.
    let worker = seg
        .threads
        .iter()
        .find(|t| t.name.starts_with("mib-serve-"))
        .unwrap_or_else(|| panic!("{domain}: no worker thread trace"));
    let pos = |want_begin: bool, name: &str, cat: Category| -> usize {
        worker
            .records
            .iter()
            .position(|r| match r.event {
                Event::Begin { name: n, cat: c } => want_begin && n == name && c == cat,
                Event::End { name: n, cat: c } => !want_begin && n == name && c == cat,
                _ => false,
            })
            .unwrap_or_else(|| panic!("{domain}: missing {name} span on worker"))
    };
    let order = [
        pos(true, "request", Category::Serve),
        pos(true, "solve_request", Category::Serve),
        pos(true, "solve", Category::Solver),
        pos(false, "solve", Category::Solver),
        pos(false, "solve_request", Category::Serve),
        pos(false, "request", Category::Serve),
    ];
    assert!(
        order.windows(2).all(|w| w[0] < w[1]),
        "{domain}: serve spans must nest solver spans, got {order:?}"
    );

    let marks = |name: &str| {
        seg.records()
            .filter(
                |r| matches!(r.event, Event::Mark { name: n, cat: Category::Serve, .. } if n == name),
            )
            .count()
    };
    let _ = writeln!(
        body,
        "  serve     requests=1 submit_marks={} batch_marks={} span_nesting=ok",
        marks("submit"),
        marks("batch_size"),
    );
    seg
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let domains: &[Domain] = if smoke {
        &[Domain::Portfolio]
    } else {
        &Domain::all()
    };
    let config = MibConfig::c32();

    let mut body = String::new();
    body.push_str("== Trace report: per-domain solver/compiler/serve telemetry ==\n");
    body.push_str("(instance 0 of each domain; fixed seeds; deterministic fields only.\n");
    body.push_str(" Chrome trace-event JSON per domain in results/<domain>.trace.json)\n");

    for &domain in domains {
        let _ = writeln!(body, "\n--- domain: {domain} ---");
        let mut trace: Option<Trace> = None;
        for backend in [KktBackend::Direct, KktBackend::Indirect] {
            merge_into(&mut trace, solve_segment(&mut body, domain, backend));
        }
        merge_into(&mut trace, compile_segment(&mut body, domain, config));
        merge_into(&mut trace, serve_segment(&mut body, domain));

        let trace = trace.expect("at least one segment");
        let json = trace.to_chrome_json();
        mib_trace::validate_json(&json)
            .unwrap_or_else(|e| panic!("{domain}: invalid Chrome trace JSON: {e}"));
        let _ = writeln!(body, "  trace     records={} json=valid", trace.len());
        if std::fs::create_dir_all("results").is_ok() {
            let path = format!("results/{domain}.trace.json");
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                eprintln!("(trace written to {path})");
            }
        }
    }

    body.push_str("\nAll per-iteration residual events matched the returned\n");
    body.push_str("SolveResult bitwise; all serve spans nested the solver spans.\n");
    if smoke {
        println!("{body}");
        println!("(smoke mode: results/trace_report.txt not rewritten)");
    } else {
        mib_bench::emit_report("trace_report", &body);
    }
}
