//! Figure 3: per-domain sparsity patterns, total FLOPs of the two solver
//! variants, and the FLOP breakdown into the four primitive operations
//! (MAC, vector permutation, column elimination, element-wise).

use std::fmt::Write as _;

use mib_bench::run_reference;
use mib_problems::{suite, Domain};
use mib_qp::KktBackend;

fn main() {
    let mut body = String::new();
    body.push_str("== Figure 3: FLOP profiles of OSQP-direct vs OSQP-indirect ==\n");
    for domain in Domain::all() {
        let instances = suite(domain);
        let _ = writeln!(body, "\n--- domain: {domain} ---");
        body.push_str(&mib_bench::spy(instances[6].problem.a(), 40));
        let _ = writeln!(
            body,
            "{:>4} {:>8} | {:>12} {:>12} | breakdown direct (mac/perm/colelim/ew) | breakdown indirect",
            "idx", "nnz", "direct FLOPs", "indir FLOPs"
        );
        for inst in instances.iter().step_by(2) {
            let (rd, wd) = run_reference(inst, KktBackend::Direct);
            let (ri, wi) = run_reference(inst, KktBackend::Indirect);
            let fd = rd.profile.ops;
            let fi = ri.profile.ops;
            let pct = |f: [f64; 4]| {
                format!(
                    "{:>4.1}/{:>4.1}/{:>5.1}/{:>4.1}%",
                    100.0 * f[0],
                    100.0 * f[1],
                    100.0 * f[2],
                    100.0 * f[3]
                )
            };
            let _ = writeln!(
                body,
                "{:>4} {:>8} | {:>12.3e} {:>12.3e} | {:>28} | {:>28}{}",
                inst.index,
                inst.problem.total_nnz(),
                fd.total(),
                fi.total(),
                pct(fd.fractions()),
                pct(fi.fractions()),
                if rd.status.is_solved() && ri.status.is_solved() {
                    ""
                } else {
                    "  (!)"
                },
            );
            let _ = (wd, wi);
        }
    }
    body.push_str("\nReading guide (matches the paper's qualitative findings):\n");
    body.push_str("* direct-variant FLOPs are dominated by column elimination\n");
    body.push_str("  (factorization + L-solve), indirect by MAC (SpMV);\n");
    body.push_str("* which variant needs more total FLOPs depends on the domain.\n");
    mib_bench::emit_report("fig03_flops", &body);
}
