//! Figure 2: the portfolio-domain sparsity pattern (half-arrow constraint
//! matrix) shared across problem instances.

use mib_problems::portfolio;
use mib_qp::kkt::KktMatrix;

fn main() {
    let mut body = String::new();
    body.push_str("== Figure 2: portfolio sparsity pattern ==\n\n");
    let pr = portfolio(60, 6, 42);
    body.push_str("Constraint matrix A (budget row + factor block + long-only identity):\n");
    body.push_str(&mib_bench::spy(pr.a(), 48));
    body.push('\n');
    let rho = vec![0.1; pr.num_constraints()];
    let kkt = KktMatrix::assemble(pr.p(), pr.a(), 1e-6, &rho).expect("valid problem");
    body.push_str("\nKKT matrix K (upper triangle):\n");
    body.push_str(&mib_bench::spy(kkt.matrix(), 48));
    body.push_str("\nThe pattern is identical for every problem instance of the domain;\n");
    body.push_str("only numeric values change between instances (Section II.B).\n");
    // Demonstrate: a re-valued instance (e.g. a new trading day's data on
    // the same factor structure) has the same pattern, so the compiled
    // schedules amortize across instances.
    let pr2 = pr.a().map_values(|v| 1.3 * v);
    assert!(
        pr.a().same_pattern(&pr2),
        "pattern must be instance-invariant"
    );
    body.push_str("verified: re-valued problem instances share the A pattern exactly\n");
    mib_bench::emit_report("fig02_pattern", &body);
}
