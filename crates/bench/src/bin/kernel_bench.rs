//! kernel_bench: std-only micro-benchmark of the dispatched SIMD kernels.
//!
//! Measures per-kernel GFLOP/s for the hot `_into` kernels under **both**
//! dispatch paths (portable chunked-scalar and AVX2 where the host has
//! it), sweeps the sparse kernels across the five benchmark domains, runs
//! the [`BatchSolver`] thread-scaling study, and attributes per-stage
//! solver time through the opt-in `mib-trace` kernel spans. The report is
//! machine-diffable JSON with stable key order
//! (`results/BENCH_kernels.json`); GFLOP/s numbers are
//! environment-dependent, everything else is deterministic.
//!
//! The vendored `criterion` is an API stub, so timing is plain
//! `std::time::Instant`: per measurement the kernel is warmed up, then
//! the best (minimum) of several timed repetitions is taken — the
//! standard floor-of-noise estimator for short deterministic kernels.
//!
//! `--smoke` (the `scripts/check.sh` gate) runs small sizes, validates
//! the report schema, and asserts the two dispatch paths agree
//! **bitwise** on every benchmarked kernel with fixed-seed data; it does
//! not overwrite the committed results.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use mib_problems::{instance, Domain};
use mib_qp::{BatchSolver, BatchUpdate, Settings, Solver, Status};
use mib_sparse::simd::{self, DispatchPath};
use mib_sparse::{ldl::LdlSolver, order::Ordering, CscMatrix, TripletMatrix};

/// Timed repetitions per measurement; the minimum is reported.
const REPS: usize = 7;
/// Target duration of one timed repetition, used to size the inner loop.
const TARGET_NS_PER_REP: f64 = 2e6;

/// xorshift64* — deterministic, dependency-free data generation.
struct Rng(u64);

impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        let u = self.0.wrapping_mul(0x2545_f491_4f6c_dd1d);
        // Uniform in [-1, 1).
        (u >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }

    fn vec(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_f64()).collect()
    }
}

/// Best-of-`REPS` nanoseconds per call of `f`, with `f` run `inner`
/// times per repetition.
fn time_ns(inner: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..inner.div_ceil(2).max(1) {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        for _ in 0..inner {
            f();
        }
        let per_call = t0.elapsed().as_nanos() as f64 / inner as f64;
        best = best.min(per_call);
    }
    best
}

/// Inner-loop length for a kernel expected to cost ~`flops` flops.
fn inner_for(flops: f64) -> usize {
    // Rough 1 GFLOP/s floor keeps a repetition near TARGET_NS_PER_REP.
    ((TARGET_NS_PER_REP / flops.max(1.0)) as usize).clamp(1, 1 << 16)
}

/// One (kernel, size, path) measurement.
struct Measurement {
    group: &'static str,
    kernel: &'static str,
    /// Problem-size label: vector length, matrix dimension, ...
    n: usize,
    /// Analytic flop count of one kernel call.
    flops: f64,
    path: DispatchPath,
    ns_per_call: f64,
}

impl Measurement {
    fn gflops(&self) -> f64 {
        self.flops / self.ns_per_call
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        if !s.contains(['.', 'e', 'E']) {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

/// Upper-stored symmetric tridiagonal SPD matrix (diag 4, off-diag -1).
fn tridiag_upper(n: usize) -> CscMatrix {
    let mut t = TripletMatrix::new(n, n);
    for j in 0..n {
        if j > 0 {
            t.push(j - 1, j, -1.0).expect("in range");
        }
        t.push(j, j, 4.0).expect("in range");
    }
    CscMatrix::from_triplets(&t).expect("valid tridiagonal")
}

/// Banded rectangular matrix with ~`band` entries per column.
fn banded(nrows: usize, ncols: usize, band: usize, rng: &mut Rng) -> CscMatrix {
    let mut t = TripletMatrix::new(nrows, ncols);
    for j in 0..ncols {
        let center = j * nrows / ncols;
        let lo = center.saturating_sub(band / 2);
        let hi = (lo + band).min(nrows);
        for i in lo..hi {
            t.push(i, j, rng.next_f64()).expect("in range");
        }
    }
    CscMatrix::from_triplets(&t).expect("valid banded matrix")
}

/// The dispatch paths to benchmark on this host.
fn paths() -> Vec<DispatchPath> {
    if simd::force_dispatch(Some(DispatchPath::Avx2)) {
        simd::force_dispatch(None);
        vec![DispatchPath::Portable, DispatchPath::Avx2]
    } else {
        vec![DispatchPath::Portable]
    }
}

/// Benchmarks the dense vector kernels at one size under every path,
/// asserting cross-path bitwise agreement as it goes.
fn bench_vector_kernels(n: usize, out: &mut Vec<Measurement>) {
    let mut rng = Rng(0x9e37_79b9_7f4a_7c15 ^ n as u64);
    let x = rng.vec(n);
    let b = rng.vec(n);
    let c = rng.vec(n);
    let w = rng.vec(n);
    let l: Vec<f64> = x.iter().map(|&v| v - 0.5).collect();
    let u: Vec<f64> = x.iter().map(|&v| v + 0.5).collect();
    let mut buf = vec![0.0; n];

    // (kernel name, flops per call)
    let nf = n as f64;
    let mut reference: Vec<(&'static str, Vec<u64>)> = Vec::new();
    for path in paths() {
        assert!(simd::force_dispatch(Some(path)), "path must be forceable");
        let mut outputs: Vec<(&'static str, Vec<u64>)> = Vec::new();

        let ns = time_ns(inner_for(2.0 * nf), || {
            black_box(simd::dot(black_box(&x), black_box(&b)));
        });
        outputs.push(("dot", vec![simd::dot(&x, &b).to_bits()]));
        out.push(Measurement {
            group: "vector",
            kernel: "dot",
            n,
            flops: 2.0 * nf,
            path,
            ns_per_call: ns,
        });

        buf.copy_from_slice(&x);
        let ns = time_ns(inner_for(2.0 * nf), || {
            simd::axpy_into(black_box(&mut buf), 1e-9, black_box(&b));
        });
        buf.copy_from_slice(&x);
        simd::axpy_into(&mut buf, 0.25, &b);
        outputs.push(("axpy_into", buf.iter().map(|v| v.to_bits()).collect()));
        out.push(Measurement {
            group: "vector",
            kernel: "axpy_into",
            n,
            flops: 2.0 * nf,
            path,
            ns_per_call: ns,
        });

        let ns = time_ns(inner_for(2.0 * nf), || {
            black_box(simd::norm_inf(black_box(&x)));
        });
        outputs.push(("norm_inf", vec![simd::norm_inf(&x).to_bits()]));
        out.push(Measurement {
            group: "vector",
            kernel: "norm_inf",
            n,
            flops: 2.0 * nf,
            path,
            ns_per_call: ns,
        });

        buf.copy_from_slice(&b);
        let ns = time_ns(inner_for(2.0 * nf), || {
            simd::project_box_into(black_box(&mut buf), black_box(&l), black_box(&u));
        });
        buf.copy_from_slice(&b);
        simd::project_box_into(&mut buf, &l, &u);
        outputs.push((
            "project_box_into",
            buf.iter().map(|v| v.to_bits()).collect(),
        ));
        out.push(Measurement {
            group: "vector",
            kernel: "project_box_into",
            n,
            flops: 2.0 * nf,
            path,
            ns_per_call: ns,
        });

        let ns = time_ns(inner_for(3.0 * nf), || {
            simd::add_prod_diff_into(
                black_box(&mut buf),
                black_box(&x),
                black_box(&w),
                black_box(&b),
                black_box(&c),
            );
        });
        simd::add_prod_diff_into(&mut buf, &x, &w, &b, &c);
        outputs.push((
            "add_prod_diff_into",
            buf.iter().map(|v| v.to_bits()).collect(),
        ));
        out.push(Measurement {
            group: "vector",
            kernel: "add_prod_diff_into",
            n,
            flops: 3.0 * nf,
            path,
            ns_per_call: ns,
        });

        if reference.is_empty() {
            reference = outputs;
        } else {
            for ((name_a, bits_a), (name_b, bits_b)) in reference.iter().zip(&outputs) {
                assert_eq!(name_a, name_b);
                assert_eq!(
                    bits_a, bits_b,
                    "{name_a}(n={n}): dispatch paths disagree bitwise"
                );
            }
        }
    }
    simd::force_dispatch(None);
}

/// Benchmarks CSC SpMV / SpMVᵀ on one matrix under every path.
fn bench_spmv(group: &'static str, a: &CscMatrix, out: &mut Vec<Measurement>) {
    let mut rng = Rng(0xd1b5_4a32_d192_ed03 ^ a.nnz() as u64);
    let x = rng.vec(a.ncols());
    let yt = rng.vec(a.nrows());
    let mut y = vec![0.0; a.nrows()];
    let mut z = vec![0.0; a.ncols()];
    let flops = 2.0 * a.nnz() as f64;

    let mut reference: Vec<Vec<u64>> = Vec::new();
    for path in paths() {
        assert!(simd::force_dispatch(Some(path)), "path must be forceable");

        let ns = time_ns(inner_for(flops), || {
            a.gaxpy_into(black_box(&x), black_box(&mut y));
        });
        y.fill(0.0);
        a.gaxpy_into(&x, &mut y);
        out.push(Measurement {
            group,
            kernel: "spmv",
            n: a.ncols(),
            flops,
            path,
            ns_per_call: ns,
        });

        let ns = time_ns(inner_for(flops), || {
            a.gaxpy_t_into(black_box(&yt), black_box(&mut z));
        });
        z.fill(0.0);
        a.gaxpy_t_into(&yt, &mut z);
        out.push(Measurement {
            group,
            kernel: "spmv_t",
            n: a.ncols(),
            flops,
            path,
            ns_per_call: ns,
        });

        let outputs = vec![
            y.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
            z.iter().map(|v| v.to_bits()).collect(),
        ];
        if reference.is_empty() {
            reference = outputs;
        } else {
            assert_eq!(
                reference, outputs,
                "{group} spmv/spmv_t: dispatch paths disagree bitwise"
            );
        }
    }
    simd::force_dispatch(None);
}

/// Benchmarks the LDLᵀ triangular solve (L, D, Lᵀ sweeps) under every
/// path.
fn bench_ldl_solve(n: usize, out: &mut Vec<Measurement>) {
    let a = tridiag_upper(n);
    let solver = LdlSolver::new(&a, Ordering::MinDegree).expect("SPD tridiagonal factors");
    let l_nnz = solver.factor().l_nnz();
    // L solve + D scale + Lᵀ solve: 2 flops per L entry in each sweep.
    let flops = (4 * l_nnz + n) as f64;
    let mut rng = Rng(0xa076_1d64_78bd_642f ^ n as u64);
    let b = rng.vec(n);
    let mut work = vec![0.0; n];
    let mut x = vec![0.0; n];

    let mut reference: Vec<u64> = Vec::new();
    for path in paths() {
        assert!(simd::force_dispatch(Some(path)), "path must be forceable");
        let ns = time_ns(inner_for(flops), || {
            solver.solve_into(black_box(&b), black_box(&mut work), black_box(&mut x));
        });
        solver.solve_into(&b, &mut work, &mut x);
        out.push(Measurement {
            group: "ldl",
            kernel: "ldl_solve",
            n,
            flops,
            path,
            ns_per_call: ns,
        });
        let bits: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
        if reference.is_empty() {
            reference = bits;
        } else {
            assert_eq!(
                reference, bits,
                "ldl_solve(n={n}): dispatch paths disagree bitwise"
            );
        }
    }
    simd::force_dispatch(None);
}

/// One batch thread-scaling row.
struct ScalingRow {
    threads: usize,
    problems: usize,
    micros: u128,
}

/// BatchSolver scaling study: same batch, increasing worker counts up to
/// the host's available parallelism (on a single-core host this is
/// honestly a single row).
fn bench_batch_scaling(smoke: bool) -> Vec<ScalingRow> {
    let spec = instance(Domain::Portfolio, if smoke { 0 } else { 4 });
    let problems = if smoke { 8 } else { 32 };
    let batch = BatchSolver::new(spec.problem.clone(), Settings::default()).expect("setup");
    let q0 = spec.problem.q().to_vec();
    let updates: Vec<BatchUpdate> = (0..problems)
        .map(|k| {
            let q: Vec<f64> = q0.iter().map(|&v| v + 0.01 * k as f64).collect();
            BatchUpdate::with_q(q)
        })
        .collect();

    let ap = std::thread::available_parallelism().map_or(1, |v| v.get());
    let mut thread_counts = vec![1usize];
    let mut t = 2;
    while t <= ap {
        thread_counts.push(t);
        t *= 2;
    }
    if *thread_counts.last().expect("non-empty") != ap {
        thread_counts.push(ap);
    }
    thread_counts.dedup();

    let mut rows = Vec::new();
    for &threads in &thread_counts {
        let b = batch.clone().with_threads(threads);
        // Warm-up pass, then best-of-3.
        let _ = b.solve_batch(&updates).expect("batch solves");
        let mut best = u128::MAX;
        for _ in 0..3 {
            let t0 = Instant::now();
            let results = b.solve_batch(&updates).expect("batch solves");
            let dt = t0.elapsed().as_micros();
            assert_eq!(results.len(), problems);
            best = best.min(dt);
        }
        rows.push(ScalingRow {
            threads,
            problems,
            micros: best,
        });
    }
    rows
}

/// Per-stage kernel time share, measured through the opt-in mib-trace
/// kernel spans.
struct PhaseShare {
    algo: &'static str,
    stage: String,
    ns: u64,
    share: f64,
}

/// Aggregates `Category::Kernel` span durations by name for one solve
/// of each backend.
fn measure_phase_shares(smoke: bool) -> Vec<PhaseShare> {
    use mib_qp::Algorithm;
    let spec = instance(Domain::Portfolio, if smoke { 0 } else { 4 });
    let mut shares = Vec::new();
    mib_trace::enable();
    mib_trace::enable_kernel_spans();
    for algorithm in Algorithm::all() {
        let mut settings = Settings::with_algorithm(algorithm);
        settings.max_iter = match algorithm {
            Algorithm::Admm => 20_000,
            Algorithm::Pdqp => 2_000_000,
        };
        let mut solver = Solver::new(spec.problem.clone(), settings).expect("setup");
        mib_trace::clear();
        let result = solver.solve();
        assert_eq!(result.status, Status::Solved, "{algorithm} must converge");
        let trace = mib_trace::take();

        // Sum Begin..End durations per span name (spans nest per thread;
        // kernel stages never self-nest, so a name-keyed open map works).
        let mut open: std::collections::HashMap<u64, (&'static str, u64)> =
            std::collections::HashMap::new();
        let mut totals: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        for thread in &trace.threads {
            open.clear();
            for rec in &thread.records {
                match rec.event {
                    mib_trace::Event::Begin {
                        name,
                        cat: mib_trace::Category::Kernel,
                    } => {
                        open.insert(rec.span, (name, rec.ts_ns));
                    }
                    mib_trace::Event::End { .. } => {
                        if let Some((name, begin)) = open.remove(&rec.span) {
                            *totals.entry(name).or_insert(0) += rec.ts_ns.saturating_sub(begin);
                        }
                    }
                    _ => {}
                }
            }
        }
        let grand: u64 = totals.values().sum();
        assert!(
            !totals.is_empty(),
            "{algorithm}: kernel spans produced no stage timings"
        );
        for (stage, ns) in totals {
            shares.push(PhaseShare {
                algo: algorithm.name(),
                stage: stage.to_string(),
                ns,
                share: if grand > 0 {
                    ns as f64 / grand as f64
                } else {
                    0.0
                },
            });
        }
    }
    mib_trace::disable_kernel_spans();
    mib_trace::disable();
    mib_trace::clear();
    shares
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    let vector_sizes: &[usize] = if smoke {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let (band_n, ldl_n) = if smoke { (2_000, 500) } else { (10_000, 5_000) };

    let mut ms: Vec<Measurement> = Vec::new();
    for &n in vector_sizes {
        bench_vector_kernels(n, &mut ms);
    }
    let mut rng = Rng(0x243f_6a88_85a3_08d3);
    let a = banded(band_n, band_n, 16, &mut rng);
    bench_spmv("sparse_banded", &a, &mut ms);
    let domain_index = if smoke { 0 } else { 9 };
    let mut domain_dims: Vec<(Domain, usize, usize, usize)> = Vec::new();
    for domain in Domain::all() {
        let spec = instance(domain, domain_index);
        let am = spec.problem.a();
        domain_dims.push((domain, am.nrows(), am.ncols(), am.nnz()));
        bench_spmv(domain.name(), am, &mut ms);
    }
    bench_ldl_solve(ldl_n, &mut ms);

    let scaling = bench_batch_scaling(smoke);
    let phases = measure_phase_shares(smoke);

    // ---- report ----------------------------------------------------------
    let cores = std::thread::available_parallelism().map_or(1, |v| v.get());
    let mut json = String::from("{\"bench\":\"kernels\",");
    let _ = write!(
        json,
        "\"mode\":\"{}\",\"host\":{{\"cores\":{},\"default_path\":\"{}\",\"features\":[",
        if smoke { "smoke" } else { "full" },
        cores,
        simd::dispatch_path().as_str(),
    );
    for (i, feat) in simd::detected_features().iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(json, "\"{feat}\"");
    }
    json.push_str("]},\"kernels\":[");
    for (i, m) in ms.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"group\":\"{}\",\"kernel\":\"{}\",\"n\":{},\"path\":\"{}\",\
             \"flops\":{},\"ns_per_call\":{},\"gflops\":{}}}",
            m.group,
            m.kernel,
            m.n,
            m.path.as_str(),
            json_f64(m.flops),
            json_f64(m.ns_per_call),
            json_f64(m.gflops()),
        );
    }
    json.push_str("],\"speedups\":[");
    // AVX2-over-portable ratio per (group, kernel, n) when both were run.
    let mut first = true;
    for m in &ms {
        if m.path != DispatchPath::Avx2 {
            continue;
        }
        let base = ms.iter().find(|p| {
            p.path == DispatchPath::Portable
                && p.group == m.group
                && p.kernel == m.kernel
                && p.n == m.n
        });
        if let Some(base) = base {
            if !first {
                json.push(',');
            }
            first = false;
            let _ = write!(
                json,
                "{{\"group\":\"{}\",\"kernel\":\"{}\",\"n\":{},\"avx2_over_portable\":{}}}",
                m.group,
                m.kernel,
                m.n,
                json_f64(base.ns_per_call / m.ns_per_call),
            );
        }
    }
    json.push_str("],\"domains\":[");
    for (i, (domain, nrows, ncols, nnz)) in domain_dims.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"domain\":\"{domain}\",\"index\":{domain_index},\
             \"rows\":{nrows},\"cols\":{ncols},\"nnz\":{nnz}}}",
        );
    }
    json.push_str("],\"batch_scaling\":[");
    let base_us = scaling.first().map_or(0, |r| r.micros);
    for (i, row) in scaling.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"threads\":{},\"problems\":{},\"wall_us\":{},\"speedup\":{}}}",
            row.threads,
            row.problems,
            row.micros,
            json_f64(base_us as f64 / row.micros.max(1) as f64),
        );
    }
    json.push_str("],\"phase_shares\":[");
    for (i, p) in phases.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"algo\":\"{}\",\"stage\":\"{}\",\"ns\":{},\"share\":{}}}",
            p.algo,
            p.stage,
            p.ns,
            json_f64(p.share),
        );
    }
    json.push_str("]}");
    mib_trace::validate_json(&json).expect("kernel report must be valid JSON");

    println!("{json}");
    if smoke {
        // Smoke runs gate correctness (schema + bitwise path agreement);
        // only the full run refreshes the committed baseline.
        eprintln!("(smoke mode: results/BENCH_kernels.json not rewritten)");
    } else {
        let dir = std::path::Path::new("results");
        if std::fs::create_dir_all(dir).is_ok() {
            let path = dir.join("BENCH_kernels.json");
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("(written to {})", path.display());
            }
        }
    }
}
