//! Figure 10: end-to-end solver runtime across the 100-problem benchmark
//! on every platform, plus peak-FLOP utilization.
//!
//! MIB times are cycle-accurate (compiled schedules × reference iteration
//! counts at the paper's clock frequencies); baselines come from the
//! Table II-parameterized analytic models (DESIGN.md §1).

use std::fmt::Write as _;

use mib_bench::{evaluate, geomean};
use mib_core::MibConfig;
use mib_problems::{suite, Domain};
use mib_qp::KktBackend;

fn main() {
    let config = MibConfig::c32();
    let mut body = String::new();
    body.push_str("== Figure 10: end-to-end runtime, MIB C=32 vs CPU/GPU/RSQP ==\n");
    body.push_str("(times in milliseconds; speedups are baseline/MIB)\n");

    let mut sp_cpu_ind = Vec::new();
    let mut sp_gpu = Vec::new();
    let mut sp_rsqp = Vec::new();
    let mut sp_cpu_dir = Vec::new();
    let mut utils = Vec::new();

    for domain in Domain::all() {
        let _ = writeln!(
            body,
            "\n--- {domain} ---\n{:>4} {:>8} {:>6} | {:>9} {:>9} {:>9} {:>9} | {:>9} {:>9} | {:>6}",
            "idx",
            "nnz",
            "iters",
            "MIB-ind",
            "CPU-MKL",
            "GPU",
            "RSQP",
            "MIB-dir",
            "CPU-QDLDL",
            "util%"
        );
        for inst in suite(domain) {
            let ei = evaluate(&inst, KktBackend::Indirect, config);
            let ed = evaluate(&inst, KktBackend::Direct, config);
            let ms = |s: f64| s * 1e3;
            let _ = writeln!(
                body,
                "{:>4} {:>8} {:>6} | {:>9.3} {:>9.3} {:>9.3} {:>9.3} | {:>9.3} {:>9.3} | {:>5.1}%{}",
                inst.index,
                ei.nnz,
                ei.iterations,
                ms(ei.mib_seconds),
                ms(ei.cpu_seconds),
                ms(ei.gpu_seconds.unwrap_or(f64::NAN)),
                ms(ei.rsqp_seconds.unwrap_or(f64::NAN)),
                ms(ed.mib_seconds),
                ms(ed.cpu_seconds),
                100.0 * ei.mib_utilization,
                if ei.solved && ed.solved { "" } else { " (!)" },
            );
            if ei.solved {
                sp_cpu_ind.push(ei.cpu_seconds / ei.mib_seconds);
                sp_gpu.push(ei.gpu_seconds.unwrap() / ei.mib_seconds);
                sp_rsqp.push(ei.rsqp_seconds.unwrap() / ei.mib_seconds);
                utils.push(ei.mib_utilization);
            }
            if ed.solved {
                sp_cpu_dir.push(ed.cpu_seconds / ed.mib_seconds);
            }
        }
    }

    let _ = writeln!(
        body,
        "\n== geometric-mean end-to-end speedups (paper values in parentheses) =="
    );
    let _ = writeln!(
        body,
        "  OSQP-indirect vs CPU (MKL):   {:>6.1}x   (30.5x)",
        geomean(&sp_cpu_ind)
    );
    let _ = writeln!(
        body,
        "  OSQP-indirect vs GPU:         {:>6.1}x   ( 4.3x)",
        geomean(&sp_gpu)
    );
    let _ = writeln!(
        body,
        "  OSQP-indirect vs RSQP:        {:>6.1}x   ( 9.5x)",
        geomean(&sp_rsqp)
    );
    let _ = writeln!(
        body,
        "  OSQP-direct   vs CPU (QDLDL): {:>6.1}x   ( 2.7x)",
        geomean(&sp_cpu_dir)
    );
    let _ = writeln!(
        body,
        "  MIB mean peak-FLOP utilization: {:.1}% (higher than CPU/GPU on sparse work,\n  the paper's normalized-efficiency claim)",
        100.0 * utils.iter().sum::<f64>() / utils.len().max(1) as f64
    );
    mib_bench::emit_report("fig10_runtime", &body);
}
