//! Static certification and exact-timing sweep over the benchmark suite.
//!
//! Lowers every sampled instance of the five application domains for both
//! KKT variants, runs the `mib-verify` static verifier over each compiled
//! program (load / setup / iteration / pcg / check), and differentially
//! checks the static timing predictor: `timing::predict` must reproduce
//! `Machine::run_with_timeline` **bitwise** — total cycles, every
//! `ExecStats` counter, and the per-kind issue/stall timeline buckets.
//! Prints one certificate line per program and exits non-zero if any
//! program carries an error-severity finding, any prediction disagrees
//! with the simulator, or total forced appends regress above the
//! committed baseline — this is the gate `scripts/verify_schedules.sh`
//! enforces.
//!
//! Modes:
//! - default: three-instance sample per domain (the 120-program suite);
//! - `--full` / `MIB_VERIFY_FULL=1`: all 20 instances per domain;
//! - `--smoke`: one instance per domain (the `scripts/check.sh` timing
//!   gate);
//! - `--timing`: additionally rewrite `results/BENCH_verify.json` with
//!   per-program predicted cycles, the agreement tally, and the
//!   analysis-vs-simulation wall-clock speedup (skipped under
//!   `--smoke`, which only gates).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use mib_bench::eval_settings;
use mib_compiler::lower::lower;
use mib_compiler::verify_schedule;
use mib_core::hbm::HbmStream;
use mib_core::machine::{HazardPolicy, Machine};
use mib_core::MibConfig;
use mib_problems::{instance, Domain, INSTANCES_PER_DOMAIN};
use mib_qp::KktBackend;
use mib_verify::timing;

/// Committed baseline: total scheduler give-ups (instructions appended
/// because the placement probe limit was exhausted) across the default
/// three-instance sample. The first-fit packer currently places every
/// logical instruction within the probe limit; a count above this means
/// schedule quality regressed and the sweep fails.
const FORCED_APPENDS_BASELINE: usize = 0;

/// One certified program's timing record (for the JSON report).
struct Row {
    label: String,
    slots: u64,
    predicted_cycles: u64,
    stall_cycles: u64,
    agree: bool,
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        if !s.contains(['.', 'e', 'E']) {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full") || std::env::var_os("MIB_VERIFY_FULL").is_some();
    let smoke = args.iter().any(|a| a == "--smoke");
    let timing_report = args.iter().any(|a| a == "--timing");
    let indices: Vec<usize> = if smoke {
        vec![0]
    } else if full {
        (0..INSTANCES_PER_DOMAIN).collect()
    } else {
        vec![0, 9, INSTANCES_PER_DOMAIN - 1]
    };
    let config = MibConfig::c32();

    let mut programs = 0usize;
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut forced_appends = 0usize;
    let mut disagreements = 0usize;
    let mut analysis_time = Duration::ZERO;
    let mut sim_time = Duration::ZERO;
    let mut rows: Vec<Row> = Vec::new();

    println!("== Static schedule certification (C = {}) ==", config.width);
    for domain in Domain::all() {
        for &index in &indices {
            let inst = instance(domain, index);
            for backend in [KktBackend::Direct, KktBackend::Indirect] {
                let settings = eval_settings(backend);
                let lowered =
                    lower(&inst.problem, &settings, config).expect("benchmark instance lowers");
                let schedules = [
                    ("load", &lowered.load),
                    ("setup", &lowered.setup),
                    ("iteration", &lowered.iteration),
                    ("pcg", &lowered.pcg_iteration),
                    ("check", &lowered.check),
                ];
                for (name, s) in schedules {
                    if s.program.is_empty() {
                        continue;
                    }
                    let label = format!("{domain}[{index}]/{backend:?}/{name}");
                    let report = verify_schedule(&label, s, &config);
                    let cert = report.certificate();
                    programs += 1;
                    warnings += cert.warnings;
                    forced_appends += s.forced_appends;
                    if cert.errors > 0 {
                        errors += cert.errors;
                        println!("{report}");
                    } else {
                        println!("{cert}");
                    }

                    // Differential timing check: the static predictor must
                    // reproduce the simulator bitwise — stats AND timeline.
                    let t0 = Instant::now();
                    let predicted =
                        timing::predict(&s.program, s.hbm.len(), &config, HazardPolicy::Strict);
                    analysis_time += t0.elapsed();
                    let t1 = Instant::now();
                    let simulated = Machine::new(config).run_with_timeline(
                        &s.program,
                        &mut HbmStream::new(s.hbm.clone()),
                        HazardPolicy::Strict,
                    );
                    sim_time += t1.elapsed();
                    let (agree, slots, cycles, stalls) = match (&predicted, &simulated) {
                        (Ok(p), Ok((stats, tl))) => (
                            p.stats == *stats && p.timeline == *tl,
                            p.stats.slots,
                            p.stats.cycles,
                            p.stats.stall_cycles,
                        ),
                        _ => (false, 0, 0, 0),
                    };
                    if !agree {
                        disagreements += 1;
                        println!(
                            "TIMING DISAGREEMENT {label}: predicted {predicted:?} vs simulated {simulated:?}"
                        );
                    }
                    rows.push(Row {
                        label,
                        slots,
                        predicted_cycles: cycles,
                        stall_cycles: stalls,
                        agree,
                    });
                }
            }
        }
    }

    #[allow(clippy::cast_precision_loss)]
    let speedup = sim_time.as_secs_f64() / analysis_time.as_secs_f64().max(1e-12);
    println!(
        "\n{programs} programs verified: {errors} errors, {warnings} warnings, \
         {forced_appends} forced appends (baseline {FORCED_APPENDS_BASELINE}), \
         timing agreement {}/{programs} ({speedup:.1}x analysis speedup)",
        programs - disagreements
    );

    if timing_report && !smoke {
        let mode = if full { "full" } else { "sample" };
        let mut json = String::from("{\"bench\":\"verify\",");
        let _ = write!(
            json,
            "\"mode\":\"{mode}\",\"width\":{},\"programs\":{programs},\
             \"agreement\":{},\"forced_appends\":{forced_appends},\
             \"analysis_us\":{},\"simulation_us\":{},\"speedup\":{},\"runs\":[",
            config.width,
            programs - disagreements,
            analysis_time.as_micros(),
            sim_time.as_micros(),
            json_f64(speedup)
        );
        for (i, r) in rows.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            let _ = write!(
                json,
                "{{\"program\":\"{}\",\"slots\":{},\"predicted_cycles\":{},\
                 \"stall_cycles\":{},\"agree\":{}}}",
                r.label, r.slots, r.predicted_cycles, r.stall_cycles, r.agree
            );
        }
        json.push_str("]}");
        mib_trace::validate_json(&json).expect("verify report must be valid JSON");
        let dir = std::path::Path::new("results");
        if std::fs::create_dir_all(dir).is_ok() {
            let path = dir.join("BENCH_verify.json");
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("(written to {})", path.display());
            }
        }
    }

    let mut failed = false;
    if errors > 0 {
        println!("FAIL: error-severity findings present");
        failed = true;
    }
    if disagreements > 0 {
        println!("FAIL: static timing prediction disagrees with the simulator");
        failed = true;
    }
    if forced_appends > FORCED_APPENDS_BASELINE {
        println!(
            "FAIL: forced appends regressed ({forced_appends} > baseline {FORCED_APPENDS_BASELINE})"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("OK: every schedule certified and timed exactly");
}
