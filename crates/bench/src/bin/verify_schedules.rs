//! Static certification sweep over the benchmark suite.
//!
//! Lowers every sampled instance of the five application domains for both
//! KKT variants and runs the `mib-verify` static verifier over each
//! compiled program (load / setup / iteration / pcg / check). Prints one
//! certificate line per program and exits non-zero if any program carries
//! an error-severity finding — this is the gate `scripts/verify_schedules.sh`
//! enforces.
//!
//! By default a three-instance sample per domain keeps the sweep fast;
//! pass `--full` (or set `MIB_VERIFY_FULL=1`) to certify all 20 instances
//! per domain.

use mib_bench::eval_settings;
use mib_compiler::lower::lower;
use mib_compiler::verify_schedule;
use mib_core::MibConfig;
use mib_problems::{instance, Domain, INSTANCES_PER_DOMAIN};
use mib_qp::KktBackend;

fn main() {
    let full =
        std::env::args().any(|a| a == "--full") || std::env::var_os("MIB_VERIFY_FULL").is_some();
    let indices: Vec<usize> = if full {
        (0..INSTANCES_PER_DOMAIN).collect()
    } else {
        vec![0, 9, INSTANCES_PER_DOMAIN - 1]
    };
    let config = MibConfig::c32();

    let mut programs = 0usize;
    let mut errors = 0usize;
    let mut warnings = 0usize;

    println!("== Static schedule certification (C = {}) ==", config.width);
    for domain in Domain::all() {
        for &index in &indices {
            let inst = instance(domain, index);
            for backend in [KktBackend::Direct, KktBackend::Indirect] {
                let settings = eval_settings(backend);
                let lowered =
                    lower(&inst.problem, &settings, config).expect("benchmark instance lowers");
                let schedules = [
                    ("load", &lowered.load),
                    ("setup", &lowered.setup),
                    ("iteration", &lowered.iteration),
                    ("pcg", &lowered.pcg_iteration),
                    ("check", &lowered.check),
                ];
                for (name, s) in schedules {
                    if s.program.is_empty() {
                        continue;
                    }
                    let label = format!("{domain}[{index}]/{backend:?}/{name}");
                    let report = verify_schedule(&label, s, &config);
                    let cert = report.certificate();
                    programs += 1;
                    warnings += cert.warnings;
                    if cert.errors > 0 {
                        errors += cert.errors;
                        println!("{report}");
                    } else {
                        println!("{cert}");
                    }
                }
            }
        }
    }

    println!("\n{programs} programs verified: {errors} errors, {warnings} warnings");
    if errors > 0 {
        println!("FAIL: error-severity findings present");
        std::process::exit(1);
    }
    println!("OK: every schedule certified");
}
