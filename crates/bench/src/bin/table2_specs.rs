//! Table II: architecture specifications of all compared platforms.

fn main() {
    let mut body = String::new();
    body.push_str("== Table II: architecture specifications ==\n\n");
    body.push_str(&mib_platforms::specs::render_table());
    mib_bench::emit_report("table2_specs", &body);
}
