//! Figure 11: runtime jitter on the MPC benchmark.
//!
//! For each MPC instance, every platform's solve time is sampled 20 times
//! under its jitter model; the metric is the standard deviation normalized
//! by the mean (Section V.D). The MIB machine's execution is
//! cycle-deterministic, so only host invocation noise remains.

use std::fmt::Write as _;

use mib_bench::{evaluate, geomean, mib_platform};
use mib_core::MibConfig;
use mib_platforms::jitter::{normalized_jitter, sample_runtimes};
use mib_platforms::{CpuModel, CpuVariant, GpuModel, PlatformModel, RsqpModel};
use mib_problems::{suite, Domain};
use mib_qp::KktBackend;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = MibConfig::c32();
    let runs = 20;
    let mut rng = StdRng::seed_from_u64(2024);
    let mut body = String::new();
    body.push_str(
        "== Figure 11: normalized runtime jitter (std/mean), MPC benchmark, 20 runs ==\n\n",
    );
    let _ = writeln!(
        body,
        "{:>4} {:>8} | {:>10} {:>10} {:>10} {:>10}",
        "idx", "nnz", "MIB C=32", "CPU (MKL)", "GPU", "RSQP"
    );
    let cpu = CpuModel::new(CpuVariant::Mkl);
    let gpu = GpuModel::new();
    let rsqp = RsqpModel::new();
    let mut jm = Vec::new();
    let mut jc = Vec::new();
    let mut jg = Vec::new();
    let mut jr = Vec::new();
    for inst in suite(Domain::Mpc) {
        let e = evaluate(&inst, KktBackend::Indirect, config);
        let mib = mib_platform(e.mib_seconds);
        let sample = |m: &dyn PlatformModel, t: f64, rng: &mut StdRng| {
            normalized_jitter(&sample_runtimes(m, t, runs, rng))
        };
        let m = sample(&mib, e.mib_seconds, &mut rng);
        let c = sample(&cpu, e.cpu_seconds, &mut rng);
        let g = sample(&gpu, e.gpu_seconds.unwrap(), &mut rng);
        let r = sample(&rsqp, e.rsqp_seconds.unwrap(), &mut rng);
        let _ = writeln!(
            body,
            "{:>4} {:>8} | {:>10.5} {:>10.5} {:>10.5} {:>10.5}",
            inst.index, e.nnz, m, c, g, r
        );
        jm.push(m.max(1e-6));
        jc.push(c.max(1e-6));
        jg.push(g.max(1e-6));
        jr.push(r.max(1e-6));
    }
    let _ = writeln!(
        body,
        "\n== geometric-mean jitter reduction (paper values in parentheses) =="
    );
    let _ = writeln!(
        body,
        "  vs CPU:  {:>6.1}x  (16.5x)",
        geomean(&jc) / geomean(&jm)
    );
    let _ = writeln!(
        body,
        "  vs GPU:  {:>6.1}x  (33.4x)",
        geomean(&jg) / geomean(&jm)
    );
    let _ = writeln!(body, "  vs RSQP: {:>6.1}x", geomean(&jr) / geomean(&jm));
    body.push_str("\nThe reduction comes from cycle-accurate control of program execution:\n");
    body.push_str("the compiled schedule's cycle count is exact and identical on every run.\n");
    mib_bench::emit_report("fig11_jitter", &body);
}
