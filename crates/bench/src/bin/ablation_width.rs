//! Ablation: network width sweep (`C ∈ {8, 16, 32, 64}`).
//!
//! The paper's scalability parameter `C` trades resources for parallelism
//! (Section III.A); this ablation measures how one representative problem's
//! per-iteration cycle count and utilization scale with width, including
//! the clock-frequency penalty wider networks pay.

use std::fmt::Write as _;

use mib_bench::run_reference;
use mib_compiler::lower::lower;
use mib_core::MibConfig;
use mib_problems::{instance, Domain};
use mib_qp::KktBackend;

fn main() {
    let inst = instance(Domain::Portfolio, 8);
    let mut body = String::new();
    body.push_str("== Ablation: network width sweep (portfolio instance 8, OSQP-indirect) ==\n\n");
    let (result, _) = run_reference(&inst, KktBackend::Indirect);
    let settings = mib_bench::eval_settings(KktBackend::Indirect);
    let _ = writeln!(
        body,
        "{:>4} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "C", "clock", "iter cycles", "pcg cycles", "total ms", "speed vs C=8"
    );
    let mut base_ms = None;
    for width in [8usize, 16, 32, 64] {
        let config = MibConfig::with_width(width);
        let lowered = lower(&inst.problem, &settings, config).expect("lowering succeeds");
        let seconds = mib_bench::mib_solve_seconds(&lowered, &settings, &result);
        let ms = seconds * 1e3;
        let base = *base_ms.get_or_insert(ms);
        let _ = writeln!(
            body,
            "{:>4} {:>6.0}MHz {:>12} {:>12} {:>12.3} {:>11.2}x",
            width,
            config.clock_hz / 1e6,
            lowered.iteration_cycles(),
            lowered.pcg_cycles(),
            ms,
            base / ms
        );
    }
    body.push_str("\nWider networks cut cycles per iteration but pay in clock frequency\n");
    body.push_str("and resources (Fig. 9) — the trade-off behind the paper's two\n");
    body.push_str("prototype widths.\n");
    mib_bench::emit_report("ablation_width", &body);
}
