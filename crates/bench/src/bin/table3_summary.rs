//! Table III: geometric-mean improvement of the MIB solver over OSQP on
//! CPU and GPU — runtime, device energy efficiency, system energy
//! efficiency and jitter reduction, for both algorithm variants.

use std::fmt::Write as _;

use mib_bench::{evaluate, geomean, mib_platform};
use mib_core::MibConfig;
use mib_platforms::energy::report;
use mib_platforms::jitter::{normalized_jitter, sample_runtimes};
use mib_platforms::{CpuModel, CpuVariant, GpuModel, PlatformModel, RsqpModel};
use mib_problems::full_suite;
use mib_qp::KktBackend;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Default)]
struct Agg {
    speedup: Vec<f64>,
    device_ee: Vec<f64>,
    system_ee: Vec<f64>,
    jitter: Vec<f64>,
}

fn main() {
    let config = MibConfig::c32();
    let mut rng = StdRng::seed_from_u64(7);
    let cpu_mkl = CpuModel::new(CpuVariant::Mkl);
    let cpu_qdldl = CpuModel::new(CpuVariant::Builtin);
    let gpu = GpuModel::new();
    let rsqp = RsqpModel::new();

    let mut vs_gpu = Agg::default();
    let mut vs_cpu_ind = Agg::default();
    let mut vs_rsqp = Agg::default();
    let mut vs_cpu_dir = Agg::default();

    let jit = |m: &dyn PlatformModel, t: f64, rng: &mut StdRng| {
        normalized_jitter(&sample_runtimes(m, t, 20, rng)).max(1e-6)
    };

    for inst in full_suite() {
        // Indirect comparisons.
        let e = evaluate(&inst, KktBackend::Indirect, config);
        if e.solved {
            let mib = mib_platform(e.mib_seconds);
            let mib_energy = report(&mib, e.mib_seconds);
            let mib_j = jit(&mib, e.mib_seconds, &mut rng);
            let add = |agg: &mut Agg, model: &dyn PlatformModel, t: f64, rng: &mut StdRng| {
                let en = report(model, t);
                agg.speedup.push(t / e.mib_seconds);
                agg.device_ee
                    .push(mib_energy.device_efficiency / en.device_efficiency);
                agg.system_ee
                    .push(mib_energy.system_efficiency / en.system_efficiency);
                agg.jitter.push(jit(model, t, rng) / mib_j);
            };
            add(&mut vs_cpu_ind, &cpu_mkl, e.cpu_seconds, &mut rng);
            add(&mut vs_gpu, &gpu, e.gpu_seconds.unwrap(), &mut rng);
            add(&mut vs_rsqp, &rsqp, e.rsqp_seconds.unwrap(), &mut rng);
        }
        // Direct comparison.
        let e = evaluate(&inst, KktBackend::Direct, config);
        if e.solved {
            let mib = mib_platform(e.mib_seconds);
            let mib_energy = report(&mib, e.mib_seconds);
            let mib_j = jit(&mib, e.mib_seconds, &mut rng);
            let en = report(&cpu_qdldl, e.cpu_seconds);
            vs_cpu_dir.speedup.push(e.cpu_seconds / e.mib_seconds);
            vs_cpu_dir
                .device_ee
                .push(mib_energy.device_efficiency / en.device_efficiency);
            vs_cpu_dir
                .system_ee
                .push(mib_energy.system_efficiency / en.system_efficiency);
            vs_cpu_dir
                .jitter
                .push(jit(&cpu_qdldl, e.cpu_seconds, &mut rng) / mib_j);
        }
    }

    let mut body = String::new();
    body.push_str("== Table III: improvement of the MIB solver over OSQP baselines ==\n");
    body.push_str("(geometric means over the 100-problem suite; paper values in parentheses)\n\n");
    let _ = writeln!(
        body,
        "{:<14} {:<16} {:>14} {:>12} {:>12} {:>10}",
        "Variant", "Baseline", "Speedup", "Device EE", "System EE", "Jitter"
    );
    let row = |body: &mut String, variant: &str, baseline: &str, a: &Agg, paper: [&str; 4]| {
        let _ = writeln!(
            body,
            "{:<14} {:<16} {:>7.1}x {}  {:>7.1}x {} {:>7.1}x {} {:>6.1}x {}",
            variant,
            baseline,
            geomean(&a.speedup),
            paper[0],
            geomean(&a.device_ee),
            paper[1],
            geomean(&a.system_ee),
            paper[2],
            geomean(&a.jitter),
            paper[3],
        );
    };
    row(
        &mut body,
        "OSQP-indirect",
        "GPU (cuSparse)",
        &vs_gpu,
        ["(4.3x)", "(21.7x)", "(9.5x)", "(33.4x)"],
    );
    row(
        &mut body,
        "OSQP-indirect",
        "CPU (MKL)",
        &vs_cpu_ind,
        ["(30.5x)", "(127.0x)", "(37.3x)", "(16.5x)"],
    );
    row(
        &mut body,
        "OSQP-indirect",
        "RSQP",
        &vs_rsqp,
        ["(9.5x)", "(N/A)", "(N/A)", "(N/A)"],
    );
    row(
        &mut body,
        "OSQP-direct",
        "CPU (QDLDL)",
        &vs_cpu_dir,
        ["(2.7x)", "(11.2x)", "(3.3x)", "(13.8x)"],
    );
    mib_bench::emit_report("table3_summary", &body);
}
