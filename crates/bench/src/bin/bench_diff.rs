//! Benchmark regression gate.
//!
//! Compares the current benchmark documents against baseline copies
//! (normally the versions committed at `HEAD`, extracted by
//! `scripts/bench_diff.sh`) and exits non-zero when any tracked metric
//! regresses past its tolerance — see `mib_bench::diff` for the rules.
//!
//! ```text
//! bench_diff --baseline-serve OLD.json [--current-serve NEW.json]
//!            --baseline-kernels OLD.json [--current-kernels NEW.json]
//! ```
//!
//! At least one `--baseline-*` must be given; a current path defaults to
//! the live document under `results/`. Exit codes: 0 = pass, 1 =
//! regression, 2 = unreadable/malformed input or bad usage.

use std::process::ExitCode;

use mib_bench::diff::{diff_kernels, diff_serve, render_findings, Finding};

fn read(path: &str, what: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {what} {path}: {e}"))
}

fn run() -> Result<Vec<Finding>, String> {
    let mut args = std::env::args().skip(1);
    let mut baseline_serve = None;
    let mut baseline_kernels = None;
    let mut current_serve = "results/BENCH_serve.json".to_string();
    let mut current_kernels = "results/BENCH_kernels.json".to_string();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a path"));
        match arg.as_str() {
            "--baseline-serve" => baseline_serve = Some(value("--baseline-serve")?),
            "--baseline-kernels" => baseline_kernels = Some(value("--baseline-kernels")?),
            "--current-serve" => current_serve = value("--current-serve")?,
            "--current-kernels" => current_kernels = value("--current-kernels")?,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if baseline_serve.is_none() && baseline_kernels.is_none() {
        return Err("need --baseline-serve and/or --baseline-kernels".into());
    }

    let mut findings = Vec::new();
    if let Some(base) = baseline_serve {
        let base = read(&base, "baseline serve")?;
        let cur = read(&current_serve, "current serve")?;
        findings.extend(diff_serve(&base, &cur)?);
    }
    if let Some(base) = baseline_kernels {
        let base = read(&base, "baseline kernels")?;
        let cur = read(&current_kernels, "current kernels")?;
        findings.extend(diff_kernels(&base, &cur)?);
    }
    Ok(findings)
}

fn main() -> ExitCode {
    match run() {
        Ok(findings) => {
            print!("{}", render_findings(&findings));
            if findings.iter().all(|f| f.ok) {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("bench_diff: {msg}");
            ExitCode::from(2)
        }
    }
}
