//! serve_bench: replay a deterministic multi-tenant request trace through
//! the `mib-serve` runtime and report serving behavior.
//!
//! The trace mixes tenants from all five benchmark domains, parametric
//! `q`/bounds perturbations, warm starts, tight deadlines and explicit
//! cancellations, submitted concurrently from four client threads. After
//! the replay, every `Solved` answer is re-derived by a direct
//! single-threaded solve of the identically parameterized problem and
//! compared bitwise — serving must be an execution strategy, not a
//! numerical one. The report (also written to `results/serve_trace.txt`)
//! tabulates throughput, latency quantiles, outcome counts and the
//! pattern-shard / warm-solver hit rates.
//!
//! `--smoke` shrinks the trace for CI-style runs (`scripts/check.sh`).

use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use mib_bench::emit_report;
use mib_problems::{instance, Domain};
use mib_qp::{Algorithm, Settings, Solver, Status};
use mib_serve::{Outcome, QpServer, Request, Response, ServeConfig, SubmitError, TenantId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DOMAINS: [Domain; 5] = [
    Domain::Portfolio,
    Domain::Lasso,
    Domain::Huber,
    Domain::Mpc,
    Domain::Svm,
];

/// Tenants per domain (distinct instances, hence distinct patterns).
const TENANTS_PER_DOMAIN: usize = 2;
const CLIENTS: usize = 4;

/// One pre-generated trace entry.
struct TraceItem {
    tenant: usize,
    request: Request,
    /// Cancel the ticket right after submission.
    cancel: bool,
}

/// Deterministically perturbs a tenant's parametric data.
fn make_request(rng: &mut StdRng, problem: &mib_qp::Problem) -> Request {
    let mut request = Request::default();
    // Most requests perturb q (the classic parametric-QP axis).
    if rng.gen::<f64>() < 0.8 {
        let mut q = problem.q().to_vec();
        for qi in q.iter_mut() {
            *qi += 0.05 * (rng.gen::<f64>() - 0.5);
        }
        request.q = Some(q);
    }
    // Some widen the upper bounds (keeps l <= u).
    if rng.gen::<f64>() < 0.3 {
        let l = problem.l().to_vec();
        let mut u = problem.u().to_vec();
        for ui in u.iter_mut() {
            if ui.is_finite() {
                *ui += 0.1 * rng.gen::<f64>();
            }
        }
        request.bounds = Some((l, u));
    }
    // A few carry deadlines: mostly generous, occasionally already tight
    // enough to expire in the queue or trip the in-loop check.
    match rng.gen_range(0..20usize) {
        0 => request.deadline = Some(Duration::from_micros(rng.gen_range(1..50u64))),
        1 | 2 => request.deadline = Some(Duration::from_secs(30)),
        _ => {}
    }
    request
}

/// Perturbation for router-dispatched portfolio traffic: parametric only
/// (no deadlines, no cancels) so every shadow audit reaches a verdict.
fn make_routed_request(rng: &mut StdRng, problem: &mib_qp::Problem) -> Request {
    let mut request = Request::default();
    let mut q = problem.q().to_vec();
    for qi in q.iter_mut() {
        *qi += 0.05 * (rng.gen::<f64>() - 0.5);
    }
    request.q = Some(q);
    if rng.gen::<f64>() < 0.3 {
        let l = problem.l().to_vec();
        let mut u = problem.u().to_vec();
        for ui in u.iter_mut() {
            if ui.is_finite() {
                *ui += 0.1 * rng.gen::<f64>();
            }
        }
        request.bounds = Some((l, u));
    }
    request
}

/// Portfolio variant settings: tolerances tightened to `1e-5` so the two
/// backends' objectives land well inside the shadow-audit tolerance (at
/// the default `1e-3` the objective error of a just-terminated solve can
/// exceed `1e-2` relative on ill-conditioned domains). PDQP's iteration
/// cap is raised far past ADMM's — first-order iterations are cheap.
fn portfolio_settings(algorithm: Algorithm) -> Settings {
    let mut s = Settings::with_algorithm(algorithm);
    s.eps_abs = 1e-5;
    s.eps_rel = 1e-5;
    s.max_iter = match algorithm {
        Algorithm::Admm => 50_000,
        Algorithm::Pdqp => 2_000_000,
    };
    s
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let total_requests = if smoke { 100 } else { 600 };
    let mut rng = StdRng::seed_from_u64(0x5e27e);

    // Register two instances of each domain as tenants; keep an identical
    // template solver per tenant for the reference solves.
    let config = ServeConfig {
        queue_capacity: 32,
        // 10 plain tenant patterns + 10 portfolio-variant patterns.
        max_shards: 24,
        // Cross-check every 4th routed request on the sibling backend.
        shadow_every: 4,
        shadow_rel_tol: 1e-2,
        ..ServeConfig::default()
    };
    let server = QpServer::new(config);
    let mut tenants: Vec<(String, TenantId)> = Vec::new();
    let mut templates: Vec<Solver> = Vec::new();
    let mut problems: Vec<mib_qp::Problem> = Vec::new();
    for domain in DOMAINS {
        for index in 0..TENANTS_PER_DOMAIN {
            let spec = instance(domain, index);
            let id = server
                .register(spec.problem.clone(), Settings::default())
                .expect("tenant registration");
            templates.push(
                Solver::new(spec.problem.clone(), Settings::default()).expect("reference template"),
            );
            tenants.push((format!("{domain:?}[{index}]"), id));
            problems.push(spec.problem);
        }
    }

    // Mixed-backend portfolios: a further instance of each domain is
    // registered under both ADMM and PDQP, dispatched through the
    // telemetry-driven backend router with shadow auditing enabled.
    let mut portfolios: Vec<(String, mib_serve::PortfolioId)> = Vec::new();
    let mut portfolio_templates: Vec<[Solver; 2]> = Vec::new();
    let mut portfolio_problems: Vec<mib_qp::Problem> = Vec::new();
    for domain in DOMAINS {
        let spec = instance(domain, TENANTS_PER_DOMAIN);
        let id = server
            .register_portfolio(
                &spec.problem,
                vec![
                    portfolio_settings(Algorithm::Admm),
                    portfolio_settings(Algorithm::Pdqp),
                ],
            )
            .expect("portfolio registration");
        // Indexed by Algorithm::index(): one reference template per
        // backend for the bitwise parity check.
        portfolio_templates.push([
            Solver::new(spec.problem.clone(), portfolio_settings(Algorithm::Admm))
                .expect("admm template"),
            Solver::new(spec.problem.clone(), portfolio_settings(Algorithm::Pdqp))
                .expect("pdqp template"),
        ]);
        portfolios.push((format!("{domain:?}[{TENANTS_PER_DOMAIN}]"), id));
        portfolio_problems.push(spec.problem);
    }

    // Cold solutions per tenant, used as warm-start points for a slice
    // of the traffic.
    let warm_points: Vec<(Vec<f64>, Vec<f64>)> = templates
        .iter()
        .map(|template| {
            let result = template.clone().solve();
            (result.x, result.y)
        })
        .collect();

    // Pre-generate the whole trace so the replay is deterministic
    // regardless of client-thread interleaving.
    let trace: Vec<TraceItem> = (0..total_requests)
        .map(|_| {
            let tenant = rng.gen_range(0..tenants.len());
            let mut item = TraceItem {
                tenant,
                request: make_request(&mut rng, &problems[tenant]),
                cancel: rng.gen::<f64>() < 0.03,
            };
            if rng.gen::<f64>() < 0.1 {
                item.request.warm_start = Some(warm_points[tenant].clone());
            }
            item
        })
        .collect();
    let routed_total = total_requests / 4;
    let routed_trace: Vec<(usize, Request)> = (0..routed_total)
        .map(|_| {
            let p = rng.gen_range(0..portfolios.len());
            (p, make_routed_request(&mut rng, &portfolio_problems[p]))
        })
        .collect();

    // Replay: four clients submit disjoint round-robin slices, retrying
    // on QueueFull backpressure, then wait out their tickets.
    let responses: Mutex<Vec<(usize, Response)>> = Mutex::new(Vec::with_capacity(total_requests));
    let routed_responses: Mutex<Vec<(usize, Response)>> =
        Mutex::new(Vec::with_capacity(routed_total));
    let retries = std::sync::atomic::AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let server = &server;
            let trace = &trace;
            let routed_trace = &routed_trace;
            let tenants = &tenants;
            let portfolios = &portfolios;
            let responses = &responses;
            let routed_responses = &routed_responses;
            let retries = &retries;
            s.spawn(move || {
                let mut mine: Vec<(usize, mib_serve::Ticket)> = Vec::new();
                for (i, item) in trace.iter().enumerate() {
                    if i % CLIENTS != client {
                        continue;
                    }
                    let ticket = loop {
                        match server.submit(tenants[item.tenant].1, item.request.clone()) {
                            Ok(t) => break t,
                            Err(SubmitError::QueueFull { .. }) => {
                                retries.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => panic!("submission failed: {e}"),
                        }
                    };
                    if item.cancel {
                        ticket.cancel();
                    }
                    mine.push((i, ticket));
                }
                let mut routed_mine: Vec<(usize, mib_serve::Ticket)> = Vec::new();
                for (i, (p, request)) in routed_trace.iter().enumerate() {
                    if i % CLIENTS != client {
                        continue;
                    }
                    let ticket = loop {
                        match server.submit_routed(portfolios[*p].1, request.clone()) {
                            Ok(t) => break t,
                            Err(SubmitError::QueueFull { .. }) => {
                                retries.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => panic!("routed submission failed: {e}"),
                        }
                    };
                    routed_mine.push((i, ticket));
                }
                let mut done = Vec::with_capacity(mine.len());
                for (i, ticket) in mine {
                    done.push((i, ticket.wait()));
                }
                responses.lock().expect("responses lock").extend(done);
                let mut routed_done = Vec::with_capacity(routed_mine.len());
                for (i, ticket) in routed_mine {
                    routed_done.push((i, ticket.wait()));
                }
                routed_responses
                    .lock()
                    .expect("routed responses lock")
                    .extend(routed_done);
            });
        }
    });
    let wall = started.elapsed();
    server.shutdown();

    let mut responses = responses.into_inner().expect("responses lock");
    responses.sort_by_key(|(i, _)| *i);
    assert_eq!(
        responses.len(),
        total_requests,
        "every submitted request must reach a terminal response"
    );

    // Tally outcomes and verify bitwise parity of every Solved answer
    // against a direct single-threaded solve.
    // solved, max_iterations, infeasible, timed_out, cancelled (in-loop or queued)
    let mut by_outcome = [0usize; 5];
    let mut failed = 0usize;
    let mut expired = 0usize;
    let mut checked = 0usize;
    for (i, response) in &responses {
        let item = &trace[*i];
        match &response.outcome {
            Outcome::Finished(result) => match result.status {
                Status::Solved => {
                    by_outcome[0] += 1;
                    let mut reference = templates[item.tenant].clone();
                    let problem = &problems[item.tenant];
                    let q = item
                        .request
                        .q
                        .clone()
                        .unwrap_or_else(|| problem.q().to_vec());
                    let (l, u) = item
                        .request
                        .bounds
                        .clone()
                        .unwrap_or_else(|| (problem.l().to_vec(), problem.u().to_vec()));
                    reference.update_q(&q).expect("reference update_q");
                    reference
                        .update_bounds(&l, &u)
                        .expect("reference update_bounds");
                    reference.reset();
                    if let Some((x, y)) = &item.request.warm_start {
                        reference.warm_start(x, y);
                    }
                    let expect = reference.solve();
                    assert_eq!(expect.status, Status::Solved, "reference diverged on #{i}");
                    assert_eq!(expect.iterations, result.iterations, "#{i}");
                    assert!(
                        result
                            .x
                            .iter()
                            .zip(&expect.x)
                            .all(|(a, b)| a.to_bits() == b.to_bits())
                            && result
                                .y
                                .iter()
                                .zip(&expect.y)
                                .all(|(a, b)| a.to_bits() == b.to_bits())
                            && result.obj_val.to_bits() == expect.obj_val.to_bits(),
                        "served answer #{i} is not bitwise equal to the direct solve"
                    );
                    checked += 1;
                }
                Status::MaxIterations => by_outcome[1] += 1,
                Status::PrimalInfeasible | Status::DualInfeasible => by_outcome[2] += 1,
                Status::TimedOut => by_outcome[3] += 1,
                Status::Cancelled => by_outcome[4] += 1,
            },
            Outcome::Cancelled => by_outcome[4] += 1,
            Outcome::Expired => expired += 1,
            Outcome::Failed(e) => {
                failed += 1;
                eprintln!("request #{i} failed: {e}");
            }
        }
    }
    assert_eq!(failed, 0, "the trace contains no invalid requests");

    // Routed portfolio answers: all solved, each bitwise-identical to a
    // direct solve on the template of whichever backend served it.
    let mut routed_responses = routed_responses
        .into_inner()
        .expect("routed responses lock");
    routed_responses.sort_by_key(|(i, _)| *i);
    assert_eq!(routed_responses.len(), routed_total);
    let mut routed_by_backend = [0usize; 2];
    for (i, response) in &routed_responses {
        let (p, request) = &routed_trace[*i];
        let Outcome::Finished(result) = &response.outcome else {
            panic!("routed request #{i} did not finish: {response:?}");
        };
        assert_eq!(result.status, Status::Solved, "routed request #{i}");
        let backend_idx = result.algorithm.index();
        routed_by_backend[backend_idx] += 1;
        let mut reference = portfolio_templates[*p][backend_idx].clone();
        let problem = &portfolio_problems[*p];
        let q = request.q.clone().expect("routed requests always perturb q");
        let (l, u) = request
            .bounds
            .clone()
            .unwrap_or_else(|| (problem.l().to_vec(), problem.u().to_vec()));
        reference.update_q(&q).expect("routed reference update_q");
        reference
            .update_bounds(&l, &u)
            .expect("routed reference update_bounds");
        reference.reset();
        let expect = reference.solve();
        assert_eq!(expect.status, Status::Solved, "routed reference #{i}");
        assert_eq!(expect.iterations, result.iterations, "routed #{i}");
        assert!(
            result
                .x
                .iter()
                .zip(&expect.x)
                .all(|(a, b)| a.to_bits() == b.to_bits())
                && result.obj_val.to_bits() == expect.obj_val.to_bits(),
            "routed {} answer #{i} is not bitwise equal to the direct solve",
            result.algorithm
        );
    }

    let metrics = server.metrics();
    let c = &metrics.counters;
    let load = |a: &std::sync::atomic::AtomicU64| a.load(Ordering::Relaxed);
    let shard_hits = load(&c.shard_hits);
    let shard_total = shard_hits + load(&c.shard_misses);
    let warm_hits = load(&c.warm_hits);
    let warm_total = warm_hits + load(&c.warm_builds);
    let batches = load(&c.batches).max(1);

    let mut body = String::new();
    body.push_str("== serve_bench: mixed-tenant trace through the mib-serve runtime ==\n\n");
    let _ = writeln!(
        body,
        "trace: {total_requests} requests, {} tenants ({} domains x {TENANTS_PER_DOMAIN} instances), {CLIENTS} client threads{}",
        tenants.len(),
        DOMAINS.len(),
        if smoke { " [smoke]" } else { "" }
    );
    let _ = writeln!(
        body,
        "wall time: {:.3} s  ({:.0} req/s)\n",
        wall.as_secs_f64(),
        total_requests as f64 / wall.as_secs_f64()
    );
    let _ = writeln!(body, "outcomes:");
    let _ = writeln!(body, "  solved          {:>6}", by_outcome[0]);
    let _ = writeln!(body, "  max_iterations  {:>6}", by_outcome[1]);
    let _ = writeln!(body, "  infeasible      {:>6}", by_outcome[2]);
    let _ = writeln!(body, "  timed_out       {:>6}", by_outcome[3]);
    let _ = writeln!(body, "  cancelled       {:>6}", by_outcome[4]);
    let _ = writeln!(body, "  expired_queued  {:>6}", expired);
    let _ = writeln!(body, "  non-terminal    {:>6}\n", 0);
    let _ = writeln!(
        body,
        "bitwise parity: {checked}/{checked} Solved answers identical to direct solves\n"
    );
    // Shadow-audit gate: the sampled cross-checks between backends must
    // never disagree, in smoke and full runs alike.
    let audits = load(&c.shadow_audits);
    let mismatches = load(&c.shadow_mismatches);
    let inconclusive = load(&c.shadow_inconclusive);
    assert!(audits >= 1, "shadow sampling must fire on routed traffic");
    assert_eq!(mismatches, 0, "shadow audits found backend discrepancies");
    assert_eq!(inconclusive, 0, "every shadow audit must reach a verdict");
    assert!(
        routed_by_backend.iter().all(|&n| n > 0),
        "the router must exercise both backends (admm/pdqp: {routed_by_backend:?})"
    );
    let _ = writeln!(
        body,
        "portfolio routing: {routed_total} routed requests across {} mixed-backend portfolios",
        portfolios.len()
    );
    let _ = writeln!(
        body,
        "  primaries: {} admm, {} pdqp  (bitwise-checked against their own backend)",
        routed_by_backend[0], routed_by_backend[1]
    );
    let _ = writeln!(
        body,
        "  shadow audits: {audits} sampled, {} agreements, {mismatches} mismatches, {inconclusive} inconclusive\n",
        load(&c.shadow_agreements)
    );
    let _ = writeln!(
        body,
        "pattern shards: {:.1}% hit rate ({shard_hits}/{shard_total} lookups), {} evictions",
        100.0 * shard_hits as f64 / shard_total.max(1) as f64,
        load(&c.shard_evictions)
    );
    let _ = writeln!(
        body,
        "warm solvers:   {:.1}% hit rate ({warm_hits}/{warm_total} solves)",
        100.0 * warm_hits as f64 / warm_total.max(1) as f64
    );
    let _ = writeln!(
        body,
        "micro-batching: {} batches, {:.2} requests/batch (max batch {})",
        load(&c.batches),
        load(&c.batched_requests) as f64 / batches as f64,
        responses
            .iter()
            .map(|(_, r)| r.batch_size)
            .max()
            .unwrap_or(0)
    );
    let _ = writeln!(
        body,
        "backpressure:   {} QueueFull rejections absorbed by client retry",
        load(&c.rejected_queue_full)
    );
    let _ = writeln!(
        body,
        "                {} client-side retry sleeps",
        retries.load(Ordering::Relaxed)
    );
    let _ = writeln!(body, "\nlatency (us, bucket upper bounds):");
    for (name, h) in [
        ("queue_wait", &metrics.queue_wait),
        ("service", &metrics.service),
        ("e2e", &metrics.e2e),
    ] {
        let _ = writeln!(
            body,
            "  {name:<11} mean {:>8.1}  p50 <= {:>8}  p99 <= {:>8}",
            h.mean(),
            h.quantile_bound(0.5),
            h.quantile_bound(0.99)
        );
    }
    let _ = writeln!(
        body,
        "  queue_depth mean {:>8.1}  p99 <= {:>8}",
        metrics.queue_depth.mean(),
        metrics.queue_depth.quantile_bound(0.99)
    );
    body.push_str("\n-- metrics snapshot --\n");
    body.push_str(&metrics.render());
    if smoke {
        // Smoke runs are correctness gates; only the full trace refreshes
        // the committed baseline report.
        println!("{body}");
    } else {
        emit_report("serve_trace", &body);
        // Structured export, merged into the document the socket-level
        // load_bench also writes (one run object per mode).
        let latency = [
            ("queue_wait", &metrics.queue_wait),
            ("service", &metrics.service),
            ("e2e", &metrics.e2e),
        ]
        .into_iter()
        .map(|(name, h)| mib_bench::serve_json::LatencySummary {
            name: name.to_string(),
            mean_us: h.mean(),
            p50_us: h.quantile_bound(0.5),
            p99_us: h.quantile_bound(0.99),
        })
        .collect();
        let run = mib_bench::serve_json::ServeRun {
            mode: "inprocess".to_string(),
            requests: (total_requests + routed_total) as u64,
            clients: CLIENTS as u64,
            tenants: (tenants.len() + portfolios.len()) as u64,
            wall_seconds: wall.as_secs_f64(),
            throughput_rps: (total_requests + routed_total) as f64 / wall.as_secs_f64(),
            verified_bitwise: (checked + routed_total) as u64,
            outcomes: vec![
                ("solved".to_string(), (by_outcome[0] + routed_total) as u64),
                ("max_iterations".to_string(), by_outcome[1] as u64),
                ("infeasible".to_string(), by_outcome[2] as u64),
                ("timed_out".to_string(), by_outcome[3] as u64),
                ("cancelled".to_string(), by_outcome[4] as u64),
                ("expired_queued".to_string(), expired as u64),
            ],
            // In process there is no admission layer; the only shedding
            // signal is queue-full backpressure absorbed by client retry.
            sheds: vec![(
                "queue_full_retried".to_string(),
                load(&c.rejected_queue_full),
            )],
            latency,
            obs_overhead_pct: None,
        };
        match mib_bench::serve_json::merge_bench_serve(&run) {
            Ok(path) => eprintln!("(written to {})", path.display()),
            Err(e) => eprintln!("warning: could not write BENCH_serve.json: {e}"),
        }
    }
}
