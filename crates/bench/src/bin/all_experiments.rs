//! Runs the complete evaluation, regenerating every figure and table into
//! `results/` (see DESIGN.md §3 for the experiment index).

use std::process::Command;

fn main() {
    let bins = [
        "table2_specs",
        "fig02_pattern",
        "fig09_resources",
        "fig08_schedule",
        "fig03_flops",
        "fig11_jitter",
        "fig10_runtime",
        "table3_summary",
        "ablation_width",
        "ablation_ordering",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        println!("\n########## {bin} ##########");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!("\nall experiments complete; reports in results/");
}
