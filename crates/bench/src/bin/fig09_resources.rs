//! Figure 9: prototype resource usage on the Alveo U50, modelled for
//! C = 16 and C = 32 (and the hypothetical C = 64 the paper defers to
//! ASICs).

use std::fmt::Write as _;

use mib_platforms::resources::{alveo_u50, estimate};

fn main() {
    let dev = alveo_u50();
    let mut body = String::new();
    body.push_str("== Figure 9: prototype resource usage (Alveo U50) ==\n\n");
    let _ = writeln!(
        body,
        "{:>6} {:>12} {:>12} {:>8} {:>8} | {:>7} {:>7} {:>7} {:>7}",
        "C", "LUTs", "Registers", "DSPs", "BRAMs", "LUT%", "Reg%", "DSP%", "BRAM%"
    );
    for c in [8usize, 16, 32, 64] {
        let u = estimate(c);
        let pct = u.percent_of(&dev);
        let _ = writeln!(
            body,
            "{:>6} {:>12} {:>12} {:>8} {:>8} | {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%{}",
            c,
            u.luts,
            u.registers,
            u.dsps,
            u.brams,
            pct[0],
            pct[1],
            pct[2],
            pct[3],
            if pct[0] > 100.0 || pct[1] > 100.0 {
                "  (does not fit: ASIC territory)"
            } else {
                ""
            }
        );
    }
    body.push_str("\nThe butterfly's floating-point units map to LUTs/registers (DSP grid\n");
    body.push_str("misalignment, Section V.A), so DSP usage stays at zero and logic\n");
    body.push_str("grows as C*log2(C) — the C=64 row shows why the paper defers wider\n");
    body.push_str("networks to an ASIC.\n");
    mib_bench::emit_report("fig09_resources", &body);
}
