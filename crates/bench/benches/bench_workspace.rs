//! Benchmarks of the workspace-centric solve pipeline: the allocating
//! entry point vs. zero-allocation `solve_into` re-solves, the program
//! cache's hit path vs. full lowering, and the batched frontend vs. a
//! sequential loop over the same problems.
//!
//! A results snapshot lives in `results/bench_workspace.txt`.

use criterion::{criterion_group, criterion_main, Criterion};
use mib_compiler::cache::ProgramCache;
use mib_compiler::lower::lower;
use mib_core::MibConfig;
use mib_problems::portfolio;
use mib_qp::{BatchSolver, BatchUpdate, Settings, Solver};

const BATCH: usize = 64;

fn scenarios(base_q: &[f64]) -> Vec<BatchUpdate> {
    (0..BATCH)
        .map(|k| {
            let q = base_q
                .iter()
                .enumerate()
                .map(|(j, &v)| v * (1.0 + 0.02 * (k as f64 % 7.0)) + 1e-3 * (k + j) as f64)
                .collect();
            BatchUpdate::with_q(q)
        })
        .collect()
}

/// Fresh-solver-per-solve (setup + allocating solve every time) vs.
/// `solve_into` reusing one solver, one workspace and one result buffer —
/// the core claim of the workspace refactor.
fn bench_resolve_paths(c: &mut Criterion) {
    let problem = portfolio(60, 8, 7);

    c.bench_function("resolve/allocating_fresh_solver", |b| {
        b.iter(|| {
            let mut solver = Solver::new(problem.clone(), Settings::default()).unwrap();
            std::hint::black_box(solver.solve())
        })
    });

    let mut solver = Solver::new(problem.clone(), Settings::default()).unwrap();
    let mut result = solver.solve();
    c.bench_function("resolve/workspace_solve_into", |b| {
        b.iter(|| {
            solver.reset();
            solver.solve_into(&mut result);
            std::hint::black_box(result.iterations)
        })
    });
}

/// Full lowering vs. the program cache's hit path (clone schedules +
/// rebuild only the load program) for a parametric re-solve.
fn bench_program_cache(c: &mut Criterion) {
    let config = MibConfig::default();
    let problem = portfolio(30, 5, 7);
    let settings = Settings::default();

    c.bench_function("compile/full_lower", |b| {
        b.iter(|| std::hint::black_box(lower(&problem, &settings, config).unwrap()))
    });

    let mut cache = ProgramCache::new();
    cache.lower_cached(&problem, &settings, config).unwrap();
    c.bench_function("compile/cache_hit", |b| {
        b.iter(|| std::hint::black_box(cache.lower_cached(&problem, &settings, config).unwrap()))
    });
}

/// 64 same-pattern portfolio scenarios: sequential loop vs. the batched
/// frontend on 4 worker threads (bitwise-identical results; see
/// `tests/batch_parity.rs`).
fn bench_batch(c: &mut Criterion) {
    let problem = portfolio(60, 8, 11);
    let batch = BatchSolver::new(problem, Settings::default())
        .unwrap()
        .with_threads(4);
    let updates = scenarios(batch.template().problem().q());

    c.bench_function("batch64/sequential", |b| {
        b.iter(|| std::hint::black_box(batch.solve_sequential(&updates).unwrap().len()))
    });
    c.bench_function("batch64/threads4", |b| {
        b.iter(|| std::hint::black_box(batch.solve_batch(&updates).unwrap().len()))
    });
}

criterion_group!(
    benches,
    bench_resolve_paths,
    bench_program_cache,
    bench_batch
);
criterion_main!(benches);
