//! Criterion benchmarks of the reference ADMM solver on representative
//! instances of each domain (the CPU-native side of Fig. 10's pipeline).

use criterion::{criterion_group, criterion_main, Criterion};
use mib_problems::{instance, Domain};
use mib_qp::{KktBackend, Settings, Solver};

fn solve(domain: Domain, index: usize, backend: KktBackend) -> usize {
    let inst = instance(domain, index);
    let mut settings = Settings::with_backend(backend);
    settings.max_iter = 20_000;
    let r = Solver::new(inst.problem, settings).expect("valid").solve();
    r.iterations
}

fn bench_solver(c: &mut Criterion) {
    for domain in [Domain::Portfolio, Domain::Mpc, Domain::Svm] {
        c.bench_function(&format!("solve_direct/{domain}"), |b| {
            b.iter(|| std::hint::black_box(solve(domain, 5, KktBackend::Direct)))
        });
        c.bench_function(&format!("solve_indirect/{domain}"), |b| {
            b.iter(|| std::hint::black_box(solve(domain, 5, KktBackend::Indirect)))
        });
    }
}

fn bench_setup(c: &mut Criterion) {
    let inst = instance(Domain::Lasso, 8);
    c.bench_function("solver_setup/lasso", |b| {
        b.iter(|| {
            std::hint::black_box(Solver::new(inst.problem.clone(), Settings::default()).unwrap())
        })
    });
}

criterion_group!(benches, bench_solver, bench_setup);
criterion_main!(benches);
