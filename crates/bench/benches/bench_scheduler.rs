//! Criterion benchmarks of the compiler: kernel generation and first-fit
//! scheduling (the "few seconds to perform network instruction scheduling"
//! the paper amortizes over problem instances).

use criterion::{criterion_group, criterion_main, Criterion};
use mib_compiler::elementwise::load_vec;
use mib_compiler::spmv::{mac_spmv, SpmvOptions};
use mib_compiler::{schedule, Allocator, KernelBuilder, ScheduleOptions};
use mib_core::MibConfig;
use mib_problems::{instance, Domain};

fn spmv_kernel(width: usize) -> mib_compiler::Kernel {
    let inst = instance(Domain::Svm, 6);
    let a = inst.problem.a().to_csr();
    let config = MibConfig::with_width(width);
    let mut b = KernelBuilder::new("A_multiply", config.width, config.latency());
    let mut alloc = Allocator::new(config.width);
    let x = alloc.alloc(a.ncols());
    let y = alloc.alloc(a.nrows());
    load_vec(&mut b, x, &vec![1.0; a.ncols()]);
    mac_spmv(&mut b, &mut alloc, &a, x, y, false, SpmvOptions::default());
    b.finish()
}

fn bench_generation(c: &mut Criterion) {
    c.bench_function("compile/spmv_kernel_c32", |b| {
        b.iter(|| std::hint::black_box(spmv_kernel(32)))
    });
}

fn bench_scheduling(c: &mut Criterion) {
    let k = spmv_kernel(32);
    c.bench_function("schedule/first_fit_multi_issue", |b| {
        b.iter(|| std::hint::black_box(schedule(&k, ScheduleOptions::default())))
    });
    c.bench_function("schedule/single_issue", |b| {
        b.iter(|| {
            std::hint::black_box(schedule(
                &k,
                ScheduleOptions {
                    multi_issue: false,
                    ..Default::default()
                },
            ))
        })
    });
}

criterion_group!(benches, bench_generation, bench_scheduling);
criterion_main!(benches);
