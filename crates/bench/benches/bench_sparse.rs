//! Criterion microbenchmarks of the sparse substrate: SpMV, orderings and
//! LDLᵀ factorization — the kernels whose cost structure Fig. 3 profiles.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mib_problems::{instance, Domain};
use mib_qp::kkt::KktMatrix;
use mib_sparse::ldl::LdlSymbolic;
use mib_sparse::order::{compute, Ordering};

fn kkt_for(domain: Domain, index: usize) -> mib_sparse::CscMatrix {
    let inst = instance(domain, index);
    let rho = vec![0.1; inst.problem.num_constraints()];
    let kkt = KktMatrix::assemble(inst.problem.p(), inst.problem.a(), 1e-6, &rho).expect("valid");
    let perm = compute(kkt.matrix(), Ordering::MinDegree).expect("square");
    perm.sym_perm_upper(kkt.matrix()).expect("square")
}

fn bench_spmv(c: &mut Criterion) {
    let inst = instance(Domain::Svm, 10);
    let a = inst.problem.a().clone();
    let x = vec![1.0; a.ncols()];
    let y = vec![1.0; a.nrows()];
    c.bench_function("spmv/A_mul_x", |b| {
        b.iter(|| std::hint::black_box(a.mul_vec(&x)))
    });
    c.bench_function("spmv/At_mul_y", |b| {
        b.iter(|| std::hint::black_box(a.tr_mul_vec(&y)))
    });
}

fn bench_ordering(c: &mut Criterion) {
    let inst = instance(Domain::Portfolio, 10);
    let rho = vec![0.1; inst.problem.num_constraints()];
    let kkt = KktMatrix::assemble(inst.problem.p(), inst.problem.a(), 1e-6, &rho).expect("valid");
    c.bench_function("ordering/min_degree", |b| {
        b.iter(|| std::hint::black_box(compute(kkt.matrix(), Ordering::MinDegree).unwrap()))
    });
    c.bench_function("ordering/rcm", |b| {
        b.iter(|| std::hint::black_box(compute(kkt.matrix(), Ordering::Rcm).unwrap()))
    });
}

fn bench_factorization(c: &mut Criterion) {
    let permuted = kkt_for(Domain::Mpc, 10);
    let sym = LdlSymbolic::new(&permuted).expect("symmetric");
    c.bench_function("ldl/symbolic", |b| {
        b.iter(|| std::hint::black_box(LdlSymbolic::new(&permuted).unwrap()))
    });
    c.bench_function("ldl/numeric_refactor", |b| {
        b.iter_batched(
            || sym.factor(&permuted).unwrap(),
            |mut f| {
                sym.refactor(&permuted, &mut f).unwrap();
                std::hint::black_box(f)
            },
            BatchSize::SmallInput,
        )
    });
    let f = sym.factor(&permuted).expect("quasi-definite");
    let rhs = vec![1.0; sym.n()];
    c.bench_function("ldl/triangular_solve", |b| {
        b.iter(|| std::hint::black_box(f.solve(&rhs)))
    });
}

criterion_group!(benches, bench_spmv, bench_ordering, bench_factorization);
criterion_main!(benches);
