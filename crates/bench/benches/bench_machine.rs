//! Criterion benchmarks of the cycle-accurate machine model itself
//! (simulator throughput in slots/second).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mib_compiler::elementwise::load_vec;
use mib_compiler::spmv::{mac_spmv, SpmvOptions};
use mib_compiler::{schedule, Allocator, KernelBuilder, Schedule, ScheduleOptions};
use mib_core::hbm::HbmStream;
use mib_core::machine::{HazardPolicy, Machine};
use mib_core::MibConfig;
use mib_problems::{instance, Domain};

fn compiled_spmv() -> (MibConfig, Schedule) {
    let inst = instance(Domain::Lasso, 6);
    let a = inst.problem.a().to_csr();
    let config = MibConfig::c32();
    let mut b = KernelBuilder::new("A_multiply", config.width, config.latency());
    let mut alloc = Allocator::new(config.width);
    let x = alloc.alloc(a.ncols());
    let y = alloc.alloc(a.nrows());
    load_vec(&mut b, x, &vec![1.0; a.ncols()]);
    mac_spmv(&mut b, &mut alloc, &a, x, y, false, SpmvOptions::default());
    (config, schedule(&b.finish(), ScheduleOptions::default()))
}

fn bench_machine(c: &mut Criterion) {
    let (config, s) = compiled_spmv();
    c.bench_function("machine/run_spmv_schedule", |b| {
        b.iter_batched(
            || (Machine::new(config), HbmStream::new(s.hbm.clone())),
            |(mut m, mut hbm)| {
                m.run(&s.program, &mut hbm, HazardPolicy::Strict).unwrap();
                std::hint::black_box(m)
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
