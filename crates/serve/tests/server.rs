//! End-to-end tests of the serving runtime: routing, batching, bitwise
//! parity with direct solves, deadlines, cancellation, backpressure,
//! LRU shard eviction and drain-then-shutdown.

use std::sync::Arc;
use std::time::Duration;

use mib_problems::{instance, Domain};
use mib_qp::{KktBackend, Settings, Solver, Status};
use mib_serve::{Outcome, QpServer, Request, ServeConfig, SubmitError};

/// The reference answer for a served request: a fresh clone of the
/// template solver, identically re-parameterized, solved cold.
fn direct_reference(template: &Solver, request: &Request) -> mib_qp::SolveResult {
    let mut solver = template.clone();
    let problem = solver.problem();
    let q = request.q.clone().unwrap_or_else(|| problem.q().to_vec());
    let (l, u) = request
        .bounds
        .clone()
        .unwrap_or_else(|| (problem.l().to_vec(), problem.u().to_vec()));
    solver.update_q(&q).expect("reference update_q");
    solver
        .update_bounds(&l, &u)
        .expect("reference update_bounds");
    solver.reset();
    solver.solve()
}

#[test]
fn served_answers_are_bitwise_equal_to_direct_solves() {
    let server = QpServer::new(ServeConfig::default());
    let spec = instance(Domain::Portfolio, 0);
    let template = Solver::new(spec.problem.clone(), Settings::default()).unwrap();
    let tenant = server
        .register(spec.problem.clone(), Settings::default())
        .unwrap();

    let mut requests = Vec::new();
    requests.push(Request::default());
    for k in 0..6 {
        let mut q = spec.problem.q().to_vec();
        for (i, qi) in q.iter_mut().enumerate() {
            *qi += 0.01 * (k as f64) * ((i % 5) as f64 - 2.0);
        }
        requests.push(Request::with_q(q));
    }

    let tickets: Vec<_> = requests
        .iter()
        .map(|r| server.submit(tenant, r.clone()).expect("submit"))
        .collect();
    for (ticket, request) in tickets.into_iter().zip(&requests) {
        let response = ticket.wait();
        let served = response
            .outcome
            .result()
            .expect("request must reach the solver")
            .clone();
        let reference = direct_reference(&template, request);
        assert_eq!(served.status, reference.status);
        assert_eq!(served.iterations, reference.iterations);
        assert!(
            served
                .x
                .iter()
                .zip(&reference.x)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "served x must be bitwise equal to the direct solve"
        );
        assert!(
            served
                .y
                .iter()
                .zip(&reference.y)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "served y must be bitwise equal to the direct solve"
        );
        assert_eq!(served.obj_val.to_bits(), reference.obj_val.to_bits());
    }
    server.shutdown();

    let m = server.metrics();
    let c = &m.counters;
    let done = c.completed.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(done, requests.len() as u64);
}

#[test]
fn same_pattern_tenants_share_a_shard() {
    let server = QpServer::new(ServeConfig::default());
    // All Lasso instances share the structural pattern (same dims/sparsity
    // skeleton across the instance family) — verify with PatternKey.
    let a = instance(Domain::Lasso, 0);
    let b = instance(Domain::Lasso, 1);
    let ka = mib_serve::PatternKey::of(&a.problem, KktBackend::Direct, mib_qp::Algorithm::Admm);
    let kb = mib_serve::PatternKey::of(&b.problem, KktBackend::Direct, mib_qp::Algorithm::Admm);
    let ta = server.register(a.problem, Settings::default()).unwrap();
    let tb = server.register(b.problem, Settings::default()).unwrap();
    assert_ne!(ta, tb);
    if ka == kb {
        assert_eq!(server.shard_count(), 1);
    } else {
        assert_eq!(server.shard_count(), 2);
    }
    let t1 = server.submit(ta, Request::default()).unwrap();
    let t2 = server.submit(tb, Request::default()).unwrap();
    assert!(t1.wait().outcome.is_solved());
    assert!(t2.wait().outcome.is_solved());
    server.shutdown();
}

#[test]
fn lru_evicts_the_coldest_shard() {
    let config = ServeConfig {
        max_shards: 2,
        workers_per_shard: 1,
        ..ServeConfig::default()
    };
    let server = QpServer::new(config);
    // Three structurally distinct tenants.
    let domains = [Domain::Portfolio, Domain::Lasso, Domain::Mpc];
    let mut tenants = Vec::new();
    for d in domains {
        let spec = instance(d, 0);
        tenants.push(server.register(spec.problem, Settings::default()).unwrap());
    }
    // Registration of the third pattern must have evicted the first.
    assert_eq!(server.shard_count(), 2);
    let m = server.metrics();
    assert!(
        m.counters
            .shard_evictions
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );

    // The evicted pattern still serves: submit re-creates its shard.
    let ticket = server.submit(tenants[0], Request::default()).unwrap();
    assert!(ticket.wait().outcome.is_solved());
    assert_eq!(server.shard_count(), 2);
    server.shutdown();
}

#[test]
fn queue_full_is_reported_synchronously() {
    // One worker, capacity 1, and a long batch window so the worker sits
    // in its drain while we overfill the queue.
    let config = ServeConfig {
        queue_capacity: 1,
        workers_per_shard: 1,
        max_batch: 1,
        batch_window: Duration::ZERO,
        ..ServeConfig::default()
    };
    let server = QpServer::new(config);
    let spec = instance(Domain::Huber, 0);
    let tenant = server.register(spec.problem, Settings::default()).unwrap();

    // Flood: with capacity 1 some submissions must be rejected, and every
    // accepted ticket must still reach a terminal response.
    let mut tickets = Vec::new();
    let mut rejected = 0usize;
    for _ in 0..64 {
        match server.submit(tenant, Request::default()) {
            Ok(t) => tickets.push(t),
            Err(SubmitError::QueueFull { depth, capacity }) => {
                assert_eq!(depth, 1);
                assert_eq!(capacity, 1);
                rejected += 1;
            }
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    for t in tickets {
        assert!(t.wait().outcome.is_solved());
    }
    let m = server.metrics();
    assert_eq!(
        m.counters
            .rejected_queue_full
            .load(std::sync::atomic::Ordering::Relaxed),
        rejected as u64
    );
    server.shutdown();
}

#[test]
fn queued_requests_expire_at_their_deadline_without_solving() {
    let config = ServeConfig {
        workers_per_shard: 1,
        max_batch: 1,
        batch_window: Duration::ZERO,
        ..ServeConfig::default()
    };
    let server = QpServer::new(config);
    let spec = instance(Domain::Svm, 0);
    let tenant = server.register(spec.problem, Settings::default()).unwrap();

    // An already-expired deadline: whether it is picked up first or
    // queued behind others, the worker must answer Expired.
    let ticket = server
        .submit(tenant, Request::default().deadline(Duration::ZERO))
        .unwrap();
    let response = ticket.wait();
    assert_eq!(response.outcome, Outcome::Expired);
    server.shutdown();
    let m = server.metrics();
    assert_eq!(
        m.counters
            .expired
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
}

#[test]
fn cancellation_before_pickup_skips_the_solve() {
    // Zero workers are impossible, so park the single worker on another
    // queue entry... simplest robust construction: cancel immediately
    // after submit; either the worker sees the flag before starting
    // (Cancelled outcome) or the ADMM loop observes it at a check
    // boundary (Finished with Status::Cancelled). Both are terminal and
    // both are accepted here; the soak test exercises volume.
    let server = QpServer::new(ServeConfig::default());
    let spec = instance(Domain::Mpc, 0);
    let settings = Settings {
        check_interval: 1,
        ..Settings::default()
    };
    let tenant = server.register(spec.problem, settings).unwrap();
    let ticket = server.submit(tenant, Request::default()).unwrap();
    ticket.cancel();
    let response = ticket.wait();
    match response.outcome {
        Outcome::Cancelled => {}
        Outcome::Finished(r) => {
            assert!(matches!(r.status, Status::Cancelled | Status::Solved));
        }
        other => panic!("unexpected outcome: {other:?}"),
    }
    server.shutdown();
}

#[test]
fn invalid_parametric_data_fails_the_request_not_the_server() {
    let server = QpServer::new(ServeConfig::default());
    let spec = instance(Domain::Portfolio, 1);
    let n = spec.problem.num_vars();
    let tenant = server.register(spec.problem, Settings::default()).unwrap();

    // Wrong q length.
    let bad = server
        .submit(tenant, Request::with_q(vec![0.0; n + 1]))
        .unwrap();
    assert!(matches!(bad.wait().outcome, Outcome::Failed(_)));

    // The server keeps serving afterwards.
    let good = server.submit(tenant, Request::default()).unwrap();
    assert!(good.wait().outcome.is_solved());
    server.shutdown();
    let m = server.metrics();
    assert_eq!(
        m.counters.failed.load(std::sync::atomic::Ordering::Relaxed),
        1
    );
}

#[test]
fn shutdown_drains_accepted_work_and_rejects_new_work() {
    let server = QpServer::new(ServeConfig::default());
    let spec = instance(Domain::Lasso, 2);
    let tenant = server.register(spec.problem, Settings::default()).unwrap();
    let tickets: Vec<_> = (0..8)
        .map(|_| server.submit(tenant, Request::default()).unwrap())
        .collect();
    server.shutdown();
    // Every accepted ticket was fulfilled during the drain.
    for t in tickets {
        assert!(t.is_done());
        assert!(t.wait().outcome.is_solved());
    }
    // New work is refused.
    assert_eq!(
        server.submit(tenant, Request::default()).unwrap_err(),
        SubmitError::ShuttingDown
    );
    assert!(matches!(
        server
            .register(instance(Domain::Svm, 1).problem, Settings::default())
            .unwrap_err(),
        mib_serve::RegisterError::ShuttingDown
    ));
    // Idempotent.
    server.shutdown();
}

#[test]
fn unknown_tenant_is_rejected() {
    let server = QpServer::new(ServeConfig::default());
    let spec = instance(Domain::Huber, 1);
    let tenant = server.register(spec.problem, Settings::default()).unwrap();
    assert!(server.deregister(tenant));
    assert!(!server.deregister(tenant));
    assert_eq!(
        server.submit(tenant, Request::default()).unwrap_err(),
        SubmitError::UnknownTenant
    );
    server.shutdown();
}

#[test]
fn micro_batching_coalesces_a_burst() {
    // One worker and a generous window: a burst submitted together should
    // produce at least one batch of size > 1.
    let config = ServeConfig {
        workers_per_shard: 1,
        max_batch: 16,
        batch_window: Duration::from_millis(20),
        ..ServeConfig::default()
    };
    let server = QpServer::new(config);
    let spec = instance(Domain::Portfolio, 2);
    let tenant = server.register(spec.problem, Settings::default()).unwrap();
    let tickets: Vec<_> = (0..12)
        .map(|_| server.submit(tenant, Request::default()).unwrap())
        .collect();
    let mut max_seen = 0usize;
    for t in tickets {
        let r = t.wait();
        assert!(r.outcome.is_solved());
        max_seen = max_seen.max(r.batch_size);
    }
    assert!(
        max_seen > 1,
        "a 12-request burst through one worker must coalesce (max batch {max_seen})"
    );
    let m = server.metrics();
    let ord = std::sync::atomic::Ordering::Relaxed;
    assert_eq!(m.counters.batched_requests.load(ord), 12);
    assert!(m.counters.batches.load(ord) < 12);
    server.shutdown();
}

#[test]
fn warm_started_requests_converge() {
    let server = QpServer::new(ServeConfig::default());
    let spec = instance(Domain::Mpc, 1);
    let tenant = server
        .register(spec.problem.clone(), Settings::default())
        .unwrap();
    let first = server.submit(tenant, Request::default()).unwrap().wait();
    let solved = first.outcome.result().expect("first solve ran").clone();
    assert_eq!(solved.status, Status::Solved);

    // Re-solve the same problem warm-started from its own solution.
    let warm = server
        .submit(
            tenant,
            Request::default().warm_started(solved.x.clone(), solved.y.clone()),
        )
        .unwrap()
        .wait();
    let warm_result = warm.outcome.result().expect("warm solve ran").clone();
    assert_eq!(warm_result.status, Status::Solved);
    assert!(
        warm_result.iterations <= solved.iterations,
        "warm start must not be slower ({} vs {})",
        warm_result.iterations,
        solved.iterations
    );

    // Wrong warm-start dimensions fail cleanly.
    let bad = server
        .submit(
            tenant,
            Request::default().warm_started(vec![0.0], vec![0.0]),
        )
        .unwrap()
        .wait();
    assert!(matches!(bad.outcome, Outcome::Failed(_)));
    server.shutdown();
}

#[test]
fn portfolio_routing_explores_then_exploits_with_clean_shadow_audits() {
    let config = ServeConfig {
        shadow_every: 2,
        workers_per_shard: 1,
        ..ServeConfig::default()
    };
    let server = QpServer::new(config);
    let spec = instance(Domain::Portfolio, 0);
    let admm = Settings::default();
    let pdqp = Settings {
        max_iter: 500_000,
        ..Settings::with_algorithm(mib_qp::Algorithm::Pdqp)
    };
    let portfolio = server
        .register_portfolio(&spec.problem, vec![admm, pdqp])
        .unwrap();
    // Two variants of the same problem: two tenants, two pattern shards.
    assert_eq!(server.tenant_count(), 2);
    assert_eq!(server.shard_count(), 2);

    for _ in 0..10 {
        let ticket = server.submit_routed(portfolio, Request::default()).unwrap();
        assert!(ticket.wait().outcome.is_solved());
    }
    server.shutdown();

    let m = server.metrics();
    let ord = std::sync::atomic::Ordering::Relaxed;
    assert_eq!(m.counters.routed_portfolio.load(ord), 10);
    // Explore-first guarantees both backends actually served traffic.
    for algo in mib_qp::Algorithm::all() {
        assert!(
            m.backend.solves(algo) >= 1,
            "backend {algo} never served a routed request"
        );
        assert!(m.backend.iterations(algo) >= 1);
    }
    // Every second routed request was shadow-audited; the backends must
    // agree on this convex problem.
    assert_eq!(m.counters.shadow_audits.load(ord), 5);
    assert_eq!(m.counters.shadow_mismatches.load(ord), 0);
    assert_eq!(m.counters.shadow_inconclusive.load(ord), 0);
    assert_eq!(m.counters.shadow_agreements.load(ord), 5);

    // The router accumulated per-structure telemetry for both backends.
    // Only the 10 routed primaries count toward the exploration quota;
    // the 5 shadow audits sharpen the EWMAs without inflating it.
    let key = mib_serve::PatternKey::of(&spec.problem, KktBackend::Direct, mib_qp::Algorithm::Admm);
    let router = server.router();
    let total: u64 = mib_qp::Algorithm::all()
        .iter()
        .map(|&a| router.samples(key.structure_digest(), a))
        .sum();
    assert_eq!(total, 10, "exactly the routed primaries gate exploration");
    for a in mib_qp::Algorithm::all() {
        assert!(
            router.ewma_micros(key.structure_digest(), a).is_some(),
            "backend {a} has no EWMA despite primaries and audits"
        );
    }

    let text = m.render();
    assert!(text.contains("mib_serve_backend_solves_total{backend=\"admm\"}"));
    assert!(text.contains("mib_serve_backend_solves_total{backend=\"pdqp\"}"));
}

#[test]
fn unknown_portfolio_is_rejected() {
    let server = QpServer::new(ServeConfig::default());
    let spec = instance(Domain::Lasso, 0);
    let portfolio = server
        .register_portfolio(&spec.problem, vec![Settings::default()])
        .unwrap();
    // A single-variant portfolio routes every request to its only tenant.
    let t = server.submit_routed(portfolio, Request::default()).unwrap();
    assert!(t.wait().outcome.is_solved());
    server.shutdown();
    assert_eq!(
        server
            .submit_routed(portfolio, Request::default())
            .unwrap_err(),
        SubmitError::ShuttingDown
    );
}

#[test]
fn metrics_snapshot_reflects_traffic() {
    let server = QpServer::new(ServeConfig::default());
    let spec = instance(Domain::Svm, 2);
    let tenant = server.register(spec.problem, Settings::default()).unwrap();
    for _ in 0..4 {
        let t = server.submit(tenant, Request::default()).unwrap();
        assert!(t.wait().outcome.is_solved());
    }
    server.shutdown();
    let m: Arc<mib_serve::Metrics> = server.metrics();
    let text = m.render();
    assert!(text.contains("mib_serve_submitted_total 4"));
    assert!(text.contains("mib_serve_solved_total 4"));
    assert!(text.contains("mib_serve_completed_total 4"));
    assert!(text.contains("mib_serve_e2e_micros_count 4"));
    assert!(m.e2e.mean() > 0.0);
}
