//! The serving observability plane: tail-sampled flight recorder,
//! rolling-window latency aggregation, and SLO burn-rate tracking.
//!
//! Everything here is optional and off by default
//! ([`ObsConfig::enabled`]). When disabled, the plane costs one relaxed
//! atomic load per call site and allocates nothing — the zero-allocation
//! proof over `solve_into` keeps holding with this module compiled in.
//! When enabled, the serving layer:
//!
//! * captures a [`mib_trace::cursor`] per request and moves the span
//!   records of *anomalous* requests (slow, deadline-missed, cancelled,
//!   failed, shed) into a bounded [`FlightRecorder`] ring — tail
//!   sampling: the traces an operator wants are exactly the ones that
//!   misbehaved, and the well-behaved majority never leaves the
//!   thread-local buffer;
//! * feeds every terminal response into per-second rolling windows
//!   (per-phase, per-backend, per-tenant) from which p50/p99 upper
//!   bounds and an EWMA are computed over the trailing window;
//! * classifies every eligible response as SLO-good or SLO-bad (within
//!   the latency objective and terminal-by-convergence) and exposes
//!   multi-window burn rates: `burn = bad_fraction / (1 - target)`,
//!   the standard error-budget consumption speed (burn 1.0 = exactly
//!   spending the budget; 14.4 over 1h exhausts a 30-day budget in 2h).
//!
//! The plane renders two text documents for the admin listener:
//! [`ObsPlane::render_slo`] (objectives, burn rates, rolling quantiles)
//! and [`ObsPlane::healthz`] (readiness from shed ratio + queue depth).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mib_qp::{Algorithm, Status, ALGORITHM_COUNT};
use mib_trace::{FlightRecord, FlightRecorder, KeepReason, Record};

use crate::metrics::Metrics;
use crate::request::Outcome;

/// Relaxed ordering everywhere: observability is statistics, not
/// synchronization.
const ORD: Ordering = Ordering::Relaxed;

/// Log₂ bucket count of the rolling-window histograms: bucket `k` holds
/// samples in `(2^(k-1), 2^k]` µs, covering 1 µs up to ~33 s.
const LOG_BUCKETS: usize = 26;

/// EWMA smoothing factor per observation.
const EWMA_ALPHA: f64 = 0.05;

/// Most per-tenant rolling series kept; tenants beyond the bound are
/// aggregated into the phase series only (bounded memory under tenant
/// churn).
const MAX_TENANT_SERIES: usize = 256;

/// Observability configuration, embedded in
/// [`ServeConfig`](crate::ServeConfig).
#[derive(Debug, Clone, Copy)]
pub struct ObsConfig {
    /// Master switch. When `false` (the default) the plane records
    /// nothing and the serving hot path pays one atomic load per
    /// request.
    pub enabled: bool,
    /// Bound of the flight-recorder ring (retained anomalous requests);
    /// oldest records are evicted first. `0` keeps nothing.
    pub flight_capacity: usize,
    /// Service time above which a request is retained as
    /// [`KeepReason::Slow`], µs.
    pub slow_us: u64,
    /// Iteration stride for the solvers' per-iteration kernel detail
    /// (stage spans and KKT timing) while the plane is enabled: stride
    /// `n` records iteration 1 and every `n`-th thereafter. Flight
    /// traces keep representative kernel spans at a fraction of the
    /// always-on tracing cost; `1` records every iteration (the offline
    /// attribution harnesses' exact mode). `0` is coerced to 1.
    pub kernel_span_stride: u32,
    /// SLO latency objective: an otherwise-good response slower than
    /// this end-to-end is SLO-bad, µs.
    pub slo_latency_us: u64,
    /// SLO target fraction of good responses, in `(0, 1)` — e.g.
    /// `0.999` for a three-nines objective.
    pub slo_target: f64,
    /// Short burn-rate window, seconds (fast-burn alerting).
    pub burn_short_secs: u64,
    /// Long burn-rate window, seconds (slow-burn alerting); also the
    /// retention of every rolling series. Must be >= the short window.
    pub burn_long_secs: u64,
    /// `/healthz` turns unready when the shed fraction over the short
    /// window exceeds this ratio.
    pub healthz_shed_ratio: f64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: false,
            flight_capacity: 256,
            slow_us: 50_000,
            kernel_span_stride: 16,
            slo_latency_us: 10_000,
            slo_target: 0.999,
            burn_short_secs: 60,
            burn_long_secs: 600,
            healthz_shed_ratio: 0.5,
        }
    }
}

impl ObsConfig {
    pub(crate) fn validate(&self) {
        assert!(
            self.slo_target > 0.0 && self.slo_target < 1.0,
            "slo_target must be in (0, 1)"
        );
        assert!(self.burn_short_secs >= 1, "burn_short_secs must be >= 1");
        assert!(
            self.burn_long_secs >= self.burn_short_secs,
            "burn_long_secs must be >= burn_short_secs"
        );
        assert!(
            (0.0..=1.0).contains(&self.healthz_shed_ratio),
            "healthz_shed_ratio must be in [0, 1]"
        );
    }
}

/// Log₂ bucket index of a µs sample.
fn bucket_of(us: u64) -> usize {
    let k = (u64::BITS - us.leading_zeros()) as usize;
    k.min(LOG_BUCKETS - 1)
}

/// Upper bound (µs) of log₂ bucket `k`.
fn bucket_bound(k: usize) -> u64 {
    if k == 0 {
        0
    } else {
        1u64 << k.min(63)
    }
}

/// One second of a rolling series: a coarse log₂ histogram plus
/// count/sum. Slots are stamped with their absolute second and lazily
/// reset when the ring wraps onto a stale second.
#[derive(Debug, Clone)]
struct SecondSlot {
    sec: u64,
    counts: [u32; LOG_BUCKETS],
    count: u64,
    sum: u64,
}

impl SecondSlot {
    fn stale() -> SecondSlot {
        SecondSlot {
            sec: u64::MAX,
            counts: [0; LOG_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    fn reset(&mut self, sec: u64) {
        self.sec = sec;
        self.counts = [0; LOG_BUCKETS];
        self.count = 0;
        self.sum = 0;
    }
}

/// Rolling quantile summary of one series over a trailing window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Samples inside the window.
    pub count: u64,
    /// Mean sample, µs (0 when empty).
    pub mean_us: f64,
    /// p50 upper bound, µs.
    pub p50_us: u64,
    /// p99 upper bound, µs.
    pub p99_us: u64,
}

/// One rolling latency series: a ring of per-second log₂ histograms
/// plus an exponentially weighted moving average.
#[derive(Debug)]
struct Series {
    slots: Vec<SecondSlot>,
    ewma_us: f64,
    seeded: bool,
}

impl Series {
    fn new(window_secs: u64) -> Series {
        Series {
            slots: vec![SecondSlot::stale(); window_secs as usize],
            ewma_us: 0.0,
            seeded: false,
        }
    }

    fn observe(&mut self, sec: u64, us: u64) {
        let idx = (sec % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[idx];
        if slot.sec != sec {
            slot.reset(sec);
        }
        slot.counts[bucket_of(us)] += 1;
        slot.count += 1;
        slot.sum = slot.sum.saturating_add(us);
        if self.seeded {
            self.ewma_us += EWMA_ALPHA * (us as f64 - self.ewma_us);
        } else {
            self.ewma_us = us as f64;
            self.seeded = true;
        }
    }

    fn window(&self, now_sec: u64, window_secs: u64) -> WindowStats {
        let oldest = now_sec.saturating_sub(window_secs.saturating_sub(1));
        let mut counts = [0u64; LOG_BUCKETS];
        let mut count = 0u64;
        let mut sum = 0u64;
        for slot in &self.slots {
            if slot.sec >= oldest && slot.sec <= now_sec {
                for (acc, c) in counts.iter_mut().zip(slot.counts.iter()) {
                    *acc += u64::from(*c);
                }
                count += slot.count;
                sum = sum.saturating_add(slot.sum);
            }
        }
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((q * count as f64).ceil() as u64).max(1);
            let mut seen = 0;
            for (k, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= target {
                    return bucket_bound(k);
                }
            }
            u64::MAX
        };
        WindowStats {
            count,
            mean_us: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50_us: quantile(0.5),
            p99_us: quantile(0.99),
        }
    }
}

/// Per-second good/bad tallies behind the burn-rate computation (and,
/// reused with different semantics, the admitted/shed readiness window).
#[derive(Debug)]
struct TallyRing {
    slots: Vec<(u64, u64, u64)>, // (sec, a, b)
}

impl TallyRing {
    fn new(window_secs: u64) -> TallyRing {
        TallyRing {
            slots: vec![(u64::MAX, 0, 0); window_secs as usize],
        }
    }

    fn add(&mut self, sec: u64, a: u64, b: u64) {
        let idx = (sec % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[idx];
        if slot.0 != sec {
            *slot = (sec, 0, 0);
        }
        slot.1 += a;
        slot.2 += b;
    }

    fn window(&self, now_sec: u64, window_secs: u64) -> (u64, u64) {
        let oldest = now_sec.saturating_sub(window_secs.saturating_sub(1));
        let mut a = 0;
        let mut b = 0;
        for &(sec, sa, sb) in &self.slots {
            if sec >= oldest && sec <= now_sec {
                a += sa;
                b += sb;
            }
        }
        (a, b)
    }
}

/// Rolling aggregation state behind the plane's mutex: per-phase,
/// per-backend and per-tenant latency series plus the SLO and shed
/// tallies.
#[derive(Debug)]
struct RollingState {
    queue_wait: Series,
    service: Series,
    e2e: Series,
    backend: Vec<Series>,
    tenant: BTreeMap<u64, Series>,
    slo: TallyRing,       // (good, bad)
    admission: TallyRing, // (admitted, shed)
}

/// One burn-rate window of an [`SloReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnWindow {
    /// Window length, seconds.
    pub secs: u64,
    /// SLO-good responses inside the window.
    pub good: u64,
    /// SLO-bad responses inside the window.
    pub bad: u64,
    /// Error-budget burn rate: `bad_fraction / (1 - target)`; 0 when
    /// the window is empty.
    pub burn: f64,
}

/// Snapshot of the SLO state (see [`ObsPlane::slo_report`]).
#[derive(Debug, Clone)]
pub struct SloReport {
    /// Configured good-fraction target.
    pub target: f64,
    /// Configured latency objective, µs.
    pub latency_us: u64,
    /// Short and long burn windows, in that order.
    pub windows: [BurnWindow; 2],
}

/// The observability plane shared between the serving runtime, its
/// shards, the wire front-end and the admin listener.
#[derive(Debug)]
pub struct ObsPlane {
    cfg: ObsConfig,
    metrics: Arc<Metrics>,
    flight: FlightRecorder,
    epoch: Instant,
    state: Mutex<RollingState>,
    next_trace: AtomicU64,
}

impl ObsPlane {
    /// Builds the plane (cheap even when disabled; the rolling rings
    /// are allocated lazily on first use via the mutex-guarded state).
    pub(crate) fn new(cfg: ObsConfig, metrics: Arc<Metrics>) -> ObsPlane {
        cfg.validate();
        let window = cfg.burn_long_secs;
        ObsPlane {
            cfg,
            metrics,
            flight: FlightRecorder::new(if cfg.enabled { cfg.flight_capacity } else { 0 }),
            epoch: Instant::now(),
            state: Mutex::new(RollingState {
                queue_wait: Series::new(window),
                service: Series::new(window),
                e2e: Series::new(window),
                backend: (0..ALGORITHM_COUNT).map(|_| Series::new(window)).collect(),
                tenant: BTreeMap::new(),
                slo: TallyRing::new(window),
                admission: TallyRing::new(window),
            }),
            next_trace: AtomicU64::new(1),
        }
    }

    /// Whether the plane records anything.
    pub fn is_active(&self) -> bool {
        self.cfg.enabled
    }

    /// The plane's configuration.
    pub fn config(&self) -> &ObsConfig {
        &self.cfg
    }

    /// The flight-recorder ring.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// A fresh nonzero server-side trace id, assigned to requests the
    /// client did not stamp. The high half carries the process id so
    /// ids from different servers cannot collide in one trace store.
    pub fn next_trace_id(&self) -> u128 {
        let lo = self.next_trace.fetch_add(1, ORD);
        (u128::from(std::process::id()) << 64) | u128::from(lo)
    }

    /// Seconds since the plane was built (the rolling-window clock).
    fn sec(&self, now: Instant) -> u64 {
        now.saturating_duration_since(self.epoch).as_secs()
    }

    /// Classifies a finished request and, when it is worth a
    /// post-mortem, moves its records since `cursor` into the flight
    /// ring (prepending a synthetic queue-wait span covering
    /// `submitted_at..picked_up`). Uninteresting records are discarded.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn capture(
        &self,
        cursor: mib_trace::Cursor,
        trace_id: u128,
        outcome: &Outcome,
        service_us: u64,
        submitted_at: Instant,
        picked_up: Instant,
    ) {
        let reason = match outcome {
            Outcome::Expired => Some(KeepReason::DeadlineMissed),
            Outcome::Cancelled => Some(KeepReason::Cancelled),
            Outcome::Failed(_) => Some(KeepReason::Failed),
            Outcome::Finished(r) => match r.status {
                Status::TimedOut => Some(KeepReason::DeadlineMissed),
                Status::Cancelled => Some(KeepReason::Cancelled),
                _ if service_us > self.cfg.slow_us => Some(KeepReason::Slow),
                _ => None,
            },
        };
        let Some(reason) = reason else {
            // Not worth keeping: drop the request's records so the
            // thread buffer never fills with well-behaved traffic.
            drop(mib_trace::take_since(cursor));
            return;
        };
        let mut records = mib_trace::take_since(cursor);
        let span = mib_trace::fresh_span_id();
        let begin = Record {
            ts_ns: mib_trace::timestamp_ns(submitted_at),
            span,
            event: mib_trace::Event::Begin {
                name: "queue_wait",
                cat: mib_trace::Category::Serve,
            },
        };
        let end = Record {
            ts_ns: mib_trace::timestamp_ns(picked_up),
            span,
            event: mib_trace::Event::End {
                name: "queue_wait",
                cat: mib_trace::Category::Serve,
            },
        };
        records.splice(0..0, [begin, end]);
        let (tid, thread) = mib_trace::thread_info();
        self.push_flight(FlightRecord {
            trace_id,
            reason,
            tid,
            thread,
            records,
        });
    }

    /// Retains a flight record and mirrors the ring's kept/evicted
    /// totals into the metrics counters.
    pub(crate) fn push_flight(&self, record: FlightRecord) {
        self.flight.push(record);
        let c = &self.metrics.counters;
        c.flight_kept.store(self.flight.kept(), ORD);
        c.flight_evicted.store(self.flight.evicted(), ORD);
    }

    /// Records a request shed before it ever reached a queue. When the
    /// client stamped a trace id, a minimal synthetic flight record
    /// (one `shed` span with the reason as a mark name) is retained so
    /// `/trace/<id>` can answer "what happened to my request" even for
    /// work the server refused. Unstamped sheds only feed the
    /// readiness window — a shed flood cannot fill the ring.
    pub fn record_shed(&self, trace_id: u128, reason: &'static str, now: Instant) {
        if !self.cfg.enabled {
            return;
        }
        let sec = self.sec(now);
        self.state
            .lock()
            .expect("obs rolling state lock")
            .admission
            .add(sec, 0, 1);
        if trace_id == 0 {
            return;
        }
        let span = mib_trace::fresh_span_id();
        let ts = mib_trace::timestamp_ns(now);
        let cat = mib_trace::Category::Serve;
        let records = vec![
            Record {
                ts_ns: ts,
                span,
                event: mib_trace::Event::Begin { name: "shed", cat },
            },
            Record {
                ts_ns: ts,
                span,
                event: mib_trace::Event::Mark {
                    name: reason,
                    cat,
                    value: 1.0,
                },
            },
            Record {
                ts_ns: ts,
                span,
                event: mib_trace::Event::End { name: "shed", cat },
            },
        ];
        let (tid, thread) = mib_trace::thread_info();
        self.push_flight(FlightRecord {
            trace_id,
            reason: KeepReason::Shed,
            tid,
            thread,
            records,
        });
    }

    /// Feeds one admitted request into the readiness window.
    pub fn record_admitted(&self, now: Instant) {
        if !self.cfg.enabled {
            return;
        }
        let sec = self.sec(now);
        self.state
            .lock()
            .expect("obs rolling state lock")
            .admission
            .add(sec, 1, 0);
    }

    /// Feeds one terminal response into the rolling windows and the SLO
    /// tally. `verdict` is `Some(good)` for SLO-eligible responses and
    /// `None` for client-cancelled ones (neither good nor bad — a
    /// client abort is not server error budget).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_response(
        &self,
        tenant_id: u64,
        algorithm: Algorithm,
        queue_wait_us: u64,
        service_us: u64,
        e2e_us: u64,
        verdict: Option<bool>,
        now: Instant,
    ) {
        if !self.cfg.enabled {
            return;
        }
        let sec = self.sec(now);
        let mut st = self.state.lock().expect("obs rolling state lock");
        st.queue_wait.observe(sec, queue_wait_us);
        st.service.observe(sec, service_us);
        st.e2e.observe(sec, e2e_us);
        st.backend[algorithm.index()].observe(sec, service_us);
        let window = self.cfg.burn_long_secs;
        if st.tenant.len() < MAX_TENANT_SERIES || st.tenant.contains_key(&tenant_id) {
            st.tenant
                .entry(tenant_id)
                .or_insert_with(|| Series::new(window))
                .observe(sec, e2e_us);
        }
        match verdict {
            Some(true) => st.slo.add(sec, 1, 0),
            Some(false) => st.slo.add(sec, 0, 1),
            None => {}
        }
        drop(st);
        let c = &self.metrics.counters;
        match verdict {
            Some(true) => self.metrics.inc(&c.slo_good),
            Some(false) => self.metrics.inc(&c.slo_bad),
            None => {}
        }
    }

    /// The SLO-eligibility verdict of one terminal response:
    /// `Some(good)` or `None` when the response does not count (client
    /// cancellations).
    pub(crate) fn slo_verdict(&self, outcome: &Outcome, e2e_us: u64) -> Option<bool> {
        match outcome {
            Outcome::Cancelled => None,
            Outcome::Finished(r) => match r.status {
                Status::Cancelled => None,
                Status::Solved
                | Status::MaxIterations
                | Status::PrimalInfeasible
                | Status::DualInfeasible => Some(e2e_us <= self.cfg.slo_latency_us),
                Status::TimedOut => Some(false),
            },
            Outcome::Expired | Outcome::Failed(_) => Some(false),
        }
    }

    /// Snapshot of the burn-rate windows.
    pub fn slo_report(&self, now: Instant) -> SloReport {
        let sec = self.sec(now);
        let st = self.state.lock().expect("obs rolling state lock");
        let mut windows = [BurnWindow {
            secs: 0,
            good: 0,
            bad: 0,
            burn: 0.0,
        }; 2];
        for (w, secs) in windows
            .iter_mut()
            .zip([self.cfg.burn_short_secs, self.cfg.burn_long_secs])
        {
            let (good, bad) = st.slo.window(sec, secs);
            let total = good + bad;
            let bad_fraction = if total == 0 {
                0.0
            } else {
                bad as f64 / total as f64
            };
            *w = BurnWindow {
                secs,
                good,
                bad,
                burn: bad_fraction / (1.0 - self.cfg.slo_target),
            };
        }
        SloReport {
            target: self.cfg.slo_target,
            latency_us: self.cfg.slo_latency_us,
            windows,
        }
    }

    /// Renders the `/slo` text document: objectives, burn-rate windows,
    /// rolling per-phase/per-backend/per-tenant quantiles, and the
    /// flight-ring totals. Deterministic ordering.
    pub fn render_slo(&self, now: Instant) -> String {
        let report = self.slo_report(now);
        let mut out = String::new();
        let _ = writeln!(out, "mib_slo_target {}", report.target);
        let _ = writeln!(out, "mib_slo_latency_objective_us {}", report.latency_us);
        for (label, w) in ["short", "long"].iter().zip(report.windows.iter()) {
            let _ = writeln!(
                out,
                "mib_slo_window_seconds{{window=\"{label}\"}} {}",
                w.secs
            );
            let _ = writeln!(out, "mib_slo_good{{window=\"{label}\"}} {}", w.good);
            let _ = writeln!(out, "mib_slo_bad{{window=\"{label}\"}} {}", w.bad);
            let _ = writeln!(out, "mib_slo_burn_rate{{window=\"{label}\"}} {:.6}", w.burn);
        }
        let sec = self.sec(now);
        let window = self.cfg.burn_long_secs;
        let st = self.state.lock().expect("obs rolling state lock");
        for (phase, series) in [
            ("queue_wait", &st.queue_wait),
            ("service", &st.service),
            ("e2e", &st.e2e),
        ] {
            let stats = series.window(sec, window);
            let _ = writeln!(
                out,
                "mib_obs_phase_count{{phase=\"{phase}\"}} {}",
                stats.count
            );
            let _ = writeln!(
                out,
                "mib_obs_phase_mean_us{{phase=\"{phase}\"}} {:.3}",
                stats.mean_us
            );
            let _ = writeln!(
                out,
                "mib_obs_phase_p50_us{{phase=\"{phase}\"}} {}",
                stats.p50_us
            );
            let _ = writeln!(
                out,
                "mib_obs_phase_p99_us{{phase=\"{phase}\"}} {}",
                stats.p99_us
            );
            let _ = writeln!(
                out,
                "mib_obs_phase_ewma_us{{phase=\"{phase}\"}} {:.3}",
                series.ewma_us
            );
        }
        let mut algos: Vec<Algorithm> = Algorithm::all().to_vec();
        algos.sort_by_key(|a| a.name());
        for algo in algos {
            let stats = st.backend[algo.index()].window(sec, window);
            let _ = writeln!(
                out,
                "mib_obs_backend_p50_us{{backend=\"{}\"}} {}",
                algo.name(),
                stats.p50_us
            );
            let _ = writeln!(
                out,
                "mib_obs_backend_p99_us{{backend=\"{}\"}} {}",
                algo.name(),
                stats.p99_us
            );
            let _ = writeln!(
                out,
                "mib_obs_backend_ewma_us{{backend=\"{}\"}} {:.3}",
                algo.name(),
                st.backend[algo.index()].ewma_us
            );
        }
        for (id, series) in &st.tenant {
            let stats = series.window(sec, window);
            let _ = writeln!(
                out,
                "mib_obs_tenant_p50_us{{tenant=\"tenant-{id}\"}} {}",
                stats.p50_us
            );
            let _ = writeln!(
                out,
                "mib_obs_tenant_p99_us{{tenant=\"tenant-{id}\"}} {}",
                stats.p99_us
            );
        }
        drop(st);
        let _ = writeln!(out, "mib_obs_flight_kept_total {}", self.flight.kept());
        let _ = writeln!(
            out,
            "mib_obs_flight_evicted_total {}",
            self.flight.evicted()
        );
        let _ = writeln!(out, "mib_obs_flight_retained {}", self.flight.len());
        let _ = writeln!(
            out,
            "mib_trace_dropped_records_total {}",
            mib_trace::total_dropped()
        );
        out
    }

    /// Readiness verdict: `(ready, detail)`. Unready when the shed
    /// fraction over the short window exceeds the configured ratio —
    /// a load balancer should stop sending traffic here before the
    /// admission controller has to shed it.
    pub fn healthz(&self, now: Instant) -> (bool, String) {
        let sec = self.sec(now);
        let (admitted, shed) = self
            .state
            .lock()
            .expect("obs rolling state lock")
            .admission
            .window(sec, self.cfg.burn_short_secs);
        let total = admitted + shed;
        let ratio = if total == 0 {
            0.0
        } else {
            shed as f64 / total as f64
        };
        let ready = ratio <= self.cfg.healthz_shed_ratio;
        let detail = format!(
            "{}\nadmitted {admitted}\nshed {shed}\nshed_ratio {ratio:.6}\nshed_ratio_threshold {}\n",
            if ready { "ok" } else { "shedding" },
            self.cfg.healthz_shed_ratio
        );
        (ready, detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn active_plane(cfg: ObsConfig) -> ObsPlane {
        ObsPlane::new(cfg, Arc::new(Metrics::new()))
    }

    fn enabled_cfg() -> ObsConfig {
        ObsConfig {
            enabled: true,
            ..ObsConfig::default()
        }
    }

    #[test]
    fn disabled_plane_records_nothing() {
        let plane = active_plane(ObsConfig::default());
        assert!(!plane.is_active());
        let now = plane.epoch;
        plane.record_shed(7, "rate_limited", now);
        plane.record_admitted(now);
        plane.record_response(0, Algorithm::Admm, 1, 2, 3, Some(true), now);
        assert!(plane.flight().is_empty());
        assert_eq!(plane.slo_report(now).windows[0].good, 0);
        assert_eq!(plane.metrics.counters.slo_good.load(ORD), 0);
    }

    #[test]
    fn burn_rate_is_bad_fraction_over_budget() {
        let plane = active_plane(ObsConfig {
            slo_target: 0.9,
            ..enabled_cfg()
        });
        let now = plane.epoch;
        for _ in 0..8 {
            plane.record_response(0, Algorithm::Admm, 1, 2, 3, Some(true), now);
        }
        for _ in 0..2 {
            plane.record_response(0, Algorithm::Admm, 1, 2, 3, Some(false), now);
        }
        let report = plane.slo_report(now);
        // 20% bad against a 10% budget: burning 2x.
        for w in &report.windows {
            assert_eq!(w.good, 8);
            assert_eq!(w.bad, 2);
            assert!((w.burn - 2.0).abs() < 1e-9, "burn {}", w.burn);
        }
        assert_eq!(plane.metrics.counters.slo_good.load(ORD), 8);
        assert_eq!(plane.metrics.counters.slo_bad.load(ORD), 2);
    }

    #[test]
    fn short_window_forgets_old_failures() {
        let plane = active_plane(enabled_cfg());
        let t0 = plane.epoch;
        plane.record_response(0, Algorithm::Admm, 1, 2, 3, Some(false), t0);
        // 2 minutes later the short (60s) window is clean, the long
        // (600s) window still remembers.
        let later = t0 + Duration::from_mins(2);
        plane.record_response(0, Algorithm::Admm, 1, 2, 3, Some(true), later);
        let report = plane.slo_report(later);
        assert_eq!(report.windows[0].bad, 0, "short window must forget");
        assert_eq!(report.windows[0].good, 1);
        assert_eq!(report.windows[1].bad, 1, "long window must remember");
    }

    #[test]
    fn rolling_quantiles_cover_observed_samples() {
        let plane = active_plane(enabled_cfg());
        let now = plane.epoch;
        for us in [10u64, 20, 30, 40, 1000] {
            plane.record_response(3, Algorithm::Pdqp, us, us, us, Some(true), now);
        }
        let slo = plane.render_slo(now);
        assert!(slo.contains("mib_obs_phase_count{phase=\"e2e\"} 5"));
        assert!(slo.contains("mib_obs_backend_p99_us{backend=\"pdqp\"} 1024"));
        assert!(slo.contains("mib_obs_tenant_p99_us{tenant=\"tenant-3\"} 1024"));
        assert!(slo.contains("mib_slo_burn_rate{window=\"short\"} 0.000000"));
        assert!(slo.contains("mib_trace_dropped_records_total "));
    }

    #[test]
    fn healthz_flips_on_shed_ratio() {
        let plane = active_plane(ObsConfig {
            healthz_shed_ratio: 0.4,
            ..enabled_cfg()
        });
        let now = plane.epoch;
        let (ready, detail) = plane.healthz(now);
        assert!(ready, "an idle server is ready: {detail}");
        plane.record_admitted(now);
        plane.record_shed(0, "queue_full", now);
        let (ready, detail) = plane.healthz(now);
        assert!(!ready, "50% shed over a 40% threshold: {detail}");
        assert!(detail.contains("shed 1"));
    }

    #[test]
    fn stamped_shed_leaves_a_flight_record() {
        let plane = active_plane(enabled_cfg());
        let now = plane.epoch;
        plane.record_shed(0, "rate_limited", now);
        assert!(plane.flight().is_empty(), "unstamped sheds keep nothing");
        plane.record_shed(42, "rate_limited", now);
        let rec = plane.flight().lookup(42).expect("stamped shed retained");
        assert_eq!(rec.reason, KeepReason::Shed);
        assert!(rec.to_chrome_json().contains("rate_limited"));
        assert_eq!(plane.metrics.counters.flight_kept.load(ORD), 1);
    }

    #[test]
    fn server_side_trace_ids_are_unique_and_nonzero() {
        let plane = active_plane(enabled_cfg());
        let a = plane.next_trace_id();
        let b = plane.next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_eq!(a >> 64, u128::from(std::process::id()));
    }

    #[test]
    fn slo_verdict_classification() {
        use mib_qp::SolveResult;
        let plane = active_plane(enabled_cfg());
        let finished = |status| {
            Outcome::Finished(SolveResult {
                status,
                algorithm: Algorithm::Admm,
                x: vec![],
                y: vec![],
                z: vec![],
                obj_val: 0.0,
                prim_res: 0.0,
                dual_res: 0.0,
                iterations: 0,
                profile: mib_qp::profile::Profile::default(),
                solve_time: Duration::ZERO,
                certificate: vec![],
            })
        };
        assert_eq!(plane.slo_verdict(&finished(Status::Solved), 1), Some(true));
        assert_eq!(
            plane.slo_verdict(&finished(Status::Solved), plane.cfg.slo_latency_us + 1),
            Some(false)
        );
        assert_eq!(
            plane.slo_verdict(&finished(Status::TimedOut), 1),
            Some(false)
        );
        assert_eq!(plane.slo_verdict(&finished(Status::Cancelled), 1), None);
        assert_eq!(plane.slo_verdict(&Outcome::Cancelled, 1), None);
        assert_eq!(plane.slo_verdict(&Outcome::Expired, 1), Some(false));
    }

    #[test]
    fn log_bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), LOG_BUCKETS - 1);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 2);
        assert_eq!(bucket_bound(2), 4);
    }
}
