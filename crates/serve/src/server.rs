//! The serving front door: tenant registry, pattern-shard routing with
//! LRU eviction, admission control and drain-then-shutdown.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mib_qp::{Problem, Settings, Solver};

use crate::metrics::Metrics;
use crate::pattern::PatternKey;
use crate::request::{RegisterError, Request, SubmitError, Ticket, TicketShared};
use crate::shard::{Pending, Shard, ShardConfig, Tenant};

/// Server-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Bound of each shard's submission queue; submissions beyond it are
    /// rejected with [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// How long a worker keeps a micro-batch drain open waiting for more
    /// same-pattern requests. `Duration::ZERO` disables the wait (the
    /// worker still drains whatever is already queued, up to
    /// `max_batch`).
    pub batch_window: Duration,
    /// Largest micro-batch a worker serves back-to-back.
    pub max_batch: usize,
    /// Worker threads per pattern shard.
    pub workers_per_shard: usize,
    /// Most-recently-used pattern shards kept warm; the least recently
    /// used shard beyond this bound is drained and evicted.
    pub max_shards: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            batch_window: Duration::from_micros(200),
            max_batch: 16,
            workers_per_shard: 2,
            max_shards: 8,
        }
    }
}

impl ServeConfig {
    fn validate(&self) {
        assert!(self.queue_capacity >= 1, "queue_capacity must be >= 1");
        assert!(self.max_batch >= 1, "max_batch must be >= 1");
        assert!(
            self.workers_per_shard >= 1,
            "workers_per_shard must be >= 1"
        );
        assert!(self.max_shards >= 1, "max_shards must be >= 1");
    }

    fn shard(&self) -> ShardConfig {
        ShardConfig {
            queue_capacity: self.queue_capacity,
            batch_window: self.batch_window,
            max_batch: self.max_batch,
            workers: self.workers_per_shard,
        }
    }
}

/// Opaque handle to a registered tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(u64);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// A live shard plus its LRU stamp.
#[derive(Debug)]
struct ShardSlot {
    shard: Arc<Shard>,
    last_used: u64,
}

/// Registry state guarded by the server mutex. Held only for map
/// bookkeeping — never across a solve, an enqueue wait or a join.
#[derive(Debug)]
struct ServerState {
    tenants: HashMap<u64, Arc<Tenant>>,
    shards: HashMap<PatternKey, ShardSlot>,
    next_tenant: u64,
    /// Monotonic LRU clock, bumped on every shard touch.
    tick: u64,
    accepting: bool,
}

/// Multi-tenant QP serving runtime.
///
/// Tenants [`register`](QpServer::register) a template problem once
/// (paying solver setup), then [`submit`](QpServer::submit) parametric
/// requests against it. Requests are routed by structural
/// [`PatternKey`] onto warm worker shards, micro-batched, solved with
/// deadline/cancellation observation, and answered through [`Ticket`]s.
///
/// Every `Solved` answer is bitwise-identical to a direct cold solve of
/// the same parametric problem — serving is an execution strategy, not a
/// numerical one.
#[derive(Debug)]
pub struct QpServer {
    config: ServeConfig,
    metrics: Arc<Metrics>,
    state: Mutex<ServerState>,
}

impl Default for QpServer {
    fn default() -> Self {
        QpServer::new(ServeConfig::default())
    }
}

impl QpServer {
    /// Creates an idle server. Shards (and their worker threads) are
    /// created lazily, on first use of each pattern.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (any zero bound).
    pub fn new(config: ServeConfig) -> Self {
        config.validate();
        QpServer {
            config,
            metrics: Arc::new(Metrics::new()),
            state: Mutex::new(ServerState {
                tenants: HashMap::new(),
                shards: HashMap::new(),
                next_tenant: 0,
                tick: 0,
                accepting: true,
            }),
        }
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Live (warm) pattern shards.
    pub fn shard_count(&self) -> usize {
        self.state.lock().expect("server state lock").shards.len()
    }

    /// Registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.state.lock().expect("server state lock").tenants.len()
    }

    /// Registers a tenant: performs full solver setup (equilibration,
    /// ordering, factorization) on the template problem and warms the
    /// pattern shard so the first submission is served hot.
    ///
    /// # Errors
    ///
    /// [`RegisterError::Setup`] if the problem or settings are rejected,
    /// [`RegisterError::ShuttingDown`] after [`shutdown`](Self::shutdown).
    pub fn register(
        &self,
        problem: Problem,
        settings: Settings,
    ) -> Result<TenantId, RegisterError> {
        // Setup is the expensive part; do it outside the registry lock.
        let pattern = PatternKey::of(&problem, settings.backend);
        let template = Solver::new(problem.clone(), settings)?;
        let evicted;
        let id;
        {
            let mut st = self.state.lock().expect("server state lock");
            if !st.accepting {
                return Err(RegisterError::ShuttingDown);
            }
            id = st.next_tenant;
            st.next_tenant += 1;
            let tenant = Arc::new(Tenant {
                id,
                pattern: pattern.clone(),
                problem,
                template,
            });
            st.tenants.insert(id, tenant);
            evicted = self.touch_shard(&mut st, &pattern).1;
        }
        self.drain_evicted(evicted);
        Ok(TenantId(id))
    }

    /// Deregisters a tenant. In-flight and queued requests of the tenant
    /// still complete (workers hold their own `Arc<Tenant>`); new
    /// submissions fail with [`SubmitError::UnknownTenant`]. The pattern
    /// shard stays warm for other tenants until evicted.
    pub fn deregister(&self, tenant: TenantId) -> bool {
        self.state
            .lock()
            .expect("server state lock")
            .tenants
            .remove(&tenant.0)
            .is_some()
    }

    /// Submits a parametric request for `tenant`. Returns a [`Ticket`]
    /// on admission; rejects synchronously (backpressure) otherwise.
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownTenant`], [`SubmitError::QueueFull`] when
    /// the shard's bounded queue is at capacity, or
    /// [`SubmitError::ShuttingDown`].
    pub fn submit(&self, tenant: TenantId, request: Request) -> Result<Ticket, SubmitError> {
        // A concurrent eviction can stop the shard between our lookup and
        // the enqueue; re-route (the touch re-creates the shard) a couple
        // of times before giving up. The rejected Pending travels back so
        // the request is moved, never cloned.
        let mut request = request;
        for _ in 0..3 {
            let (owner, shard, evicted) = {
                let mut st = self.state.lock().expect("server state lock");
                if !st.accepting {
                    self.metrics.inc(&self.metrics.counters.rejected_shutdown);
                    return Err(SubmitError::ShuttingDown);
                }
                let owner = Arc::clone(
                    st.tenants
                        .get(&tenant.0)
                        .ok_or(SubmitError::UnknownTenant)?,
                );
                let (shard, evicted) = self.touch_shard(&mut st, &owner.pattern);
                (owner, shard, evicted)
            };
            self.drain_evicted(evicted);
            let now = Instant::now();
            let ticket = TicketShared::new();
            let pending = Pending {
                tenant: owner,
                deadline: request.deadline.map(|d| now + d),
                request,
                ticket: Arc::clone(&ticket),
                submitted_at: now,
            };
            match shard.enqueue(pending) {
                Ok(()) => return Ok(Ticket { shared: ticket }),
                // Shard was stopped by a concurrent eviction; retry.
                Err((SubmitError::ShuttingDown, rejected)) => request = rejected.request,
                Err((e, _)) => return Err(e),
            }
        }
        self.metrics.inc(&self.metrics.counters.rejected_shutdown);
        Err(SubmitError::ShuttingDown)
    }

    /// Stops accepting work, drains every shard queue and joins all
    /// worker threads. Every already-accepted ticket is fulfilled before
    /// this returns. Idempotent.
    pub fn shutdown(&self) {
        let shards: Vec<Arc<Shard>> = {
            let mut st = self.state.lock().expect("server state lock");
            st.accepting = false;
            st.shards.drain().map(|(_, slot)| slot.shard).collect()
        };
        for shard in &shards {
            shard.stop();
        }
        for shard in &shards {
            shard.join();
        }
    }

    /// Returns the (possibly new) shard for `pattern`, stamps its LRU
    /// tick, and hands back any shard evicted by the `max_shards` bound
    /// for the caller to drain outside the lock.
    fn touch_shard(
        &self,
        st: &mut ServerState,
        pattern: &PatternKey,
    ) -> (Arc<Shard>, Option<Arc<Shard>>) {
        st.tick += 1;
        let tick = st.tick;
        let c = &self.metrics.counters;
        if let Some(slot) = st.shards.get_mut(pattern) {
            self.metrics.inc(&c.shard_hits);
            slot.last_used = tick;
            return (Arc::clone(&slot.shard), None);
        }
        self.metrics.inc(&c.shard_misses);
        let shard = Shard::spawn(
            pattern.clone(),
            self.config.shard(),
            Arc::clone(&self.metrics),
        );
        st.shards.insert(
            pattern.clone(),
            ShardSlot {
                shard: Arc::clone(&shard),
                last_used: tick,
            },
        );
        let evicted = if st.shards.len() > self.config.max_shards {
            let coldest = st
                .shards
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(key, _)| key.clone())
                .expect("shards cannot be empty here");
            self.metrics.inc(&c.shard_evictions);
            st.shards.remove(&coldest).map(|slot| slot.shard)
        } else {
            None
        };
        (shard, evicted)
    }

    /// Gracefully drains an evicted shard: queued requests are still
    /// served and their tickets fulfilled, then the workers exit.
    fn drain_evicted(&self, evicted: Option<Arc<Shard>>) {
        if let Some(shard) = evicted {
            shard.stop();
            shard.join();
        }
    }
}

impl Drop for QpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}
