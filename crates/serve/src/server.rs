//! The serving front door: tenant registry, pattern-shard routing with
//! LRU eviction, admission control and drain-then-shutdown.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mib_qp::{Algorithm, Problem, Settings, Solver};

use crate::metrics::Metrics;
use crate::obs::{ObsConfig, ObsPlane};
use crate::pattern::PatternKey;
use crate::request::{RegisterError, Request, SubmitError, Ticket, TicketShared};
use crate::router::BackendRouter;
use crate::shard::{Pending, Shard, ShardConfig, Tenant};

/// Server-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Bound of each shard's submission queue; submissions beyond it are
    /// rejected with [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// How long a worker keeps a micro-batch drain open waiting for more
    /// same-pattern requests. `Duration::ZERO` disables the wait (the
    /// worker still drains whatever is already queued, up to
    /// `max_batch`).
    pub batch_window: Duration,
    /// Largest micro-batch a worker serves back-to-back.
    pub max_batch: usize,
    /// Worker threads per pattern shard.
    pub workers_per_shard: usize,
    /// Most-recently-used pattern shards kept warm; the least recently
    /// used shard beyond this bound is drained and evicted.
    pub max_shards: usize,
    /// Shadow-audit sampling period for routed portfolio submissions:
    /// every `shadow_every`-th routed request is additionally re-solved
    /// on a sibling backend and the answers cross-checked
    /// (`shadow_*` counters). `0` disables auditing.
    pub shadow_every: usize,
    /// Relative objective tolerance for a shadow audit to count as
    /// agreement: `|obj_a - obj_b| <= tol * max(1, |obj_a|, |obj_b|)`.
    ///
    /// Two backends each terminating at residual tolerance `eps` can
    /// legitimately disagree in objective by a few multiples of `eps`
    /// relative; the default is sized for the solver's default
    /// `eps_abs = eps_rel = 1e-3`. Tighten it together with the solver
    /// tolerances.
    pub shadow_rel_tol: f64,
    /// Observability plane configuration (flight recorder, SLO
    /// objectives, rolling windows). Disabled by default; enabling it
    /// also enables `mib-trace` spans (including kernel spans) so the
    /// flight recorder has records to retain.
    pub obs: ObsConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            batch_window: Duration::from_micros(200),
            max_batch: 16,
            workers_per_shard: 2,
            max_shards: 8,
            shadow_every: 0,
            shadow_rel_tol: 1e-2,
            obs: ObsConfig::default(),
        }
    }
}

impl ServeConfig {
    fn validate(&self) {
        assert!(self.queue_capacity >= 1, "queue_capacity must be >= 1");
        assert!(self.max_batch >= 1, "max_batch must be >= 1");
        assert!(
            self.workers_per_shard >= 1,
            "workers_per_shard must be >= 1"
        );
        assert!(self.max_shards >= 1, "max_shards must be >= 1");
        assert!(
            self.shadow_rel_tol.is_finite() && self.shadow_rel_tol >= 0.0,
            "shadow_rel_tol must be finite and non-negative"
        );
        self.obs.validate();
    }

    fn shard(&self) -> ShardConfig {
        ShardConfig {
            queue_capacity: self.queue_capacity,
            batch_window: self.batch_window,
            max_batch: self.max_batch,
            workers: self.workers_per_shard,
            shadow_rel_tol: self.shadow_rel_tol,
        }
    }
}

/// Opaque handle to a registered tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(u64);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Opaque handle to a registered portfolio: one problem registered under
/// several solver-settings variants, with submissions routed to the
/// variant the telemetry says converges fastest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortfolioId(u64);

impl std::fmt::Display for PortfolioId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "portfolio-{}", self.0)
    }
}

/// A live shard plus its LRU stamp.
#[derive(Debug)]
struct ShardSlot {
    shard: Arc<Shard>,
    last_used: u64,
}

/// Registry state guarded by the server mutex. Held only for map
/// bookkeeping — never across a solve, an enqueue wait or a join.
#[derive(Debug)]
struct ServerState {
    tenants: HashMap<u64, Arc<Tenant>>,
    portfolios: HashMap<u64, Vec<Arc<Tenant>>>,
    shards: HashMap<PatternKey, ShardSlot>,
    next_tenant: u64,
    next_portfolio: u64,
    /// Monotonic LRU clock, bumped on every shard touch.
    tick: u64,
    accepting: bool,
}

/// Multi-tenant QP serving runtime.
///
/// Tenants [`register`](QpServer::register) a template problem once
/// (paying solver setup), then [`submit`](QpServer::submit) parametric
/// requests against it. Requests are routed by structural
/// [`PatternKey`] onto warm worker shards, micro-batched, solved with
/// deadline/cancellation observation, and answered through [`Ticket`]s.
///
/// Every `Solved` answer is bitwise-identical to a direct cold solve of
/// the same parametric problem — serving is an execution strategy, not a
/// numerical one.
#[derive(Debug)]
pub struct QpServer {
    config: ServeConfig,
    metrics: Arc<Metrics>,
    router: Arc<BackendRouter>,
    obs: Arc<ObsPlane>,
    /// Monotonic routed-submission counter driving deterministic
    /// shadow-audit sampling.
    shadow_tick: AtomicU64,
    state: Mutex<ServerState>,
}

impl Default for QpServer {
    fn default() -> Self {
        QpServer::new(ServeConfig::default())
    }
}

impl QpServer {
    /// Creates an idle server. Shards (and their worker threads) are
    /// created lazily, on first use of each pattern.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (any zero bound).
    pub fn new(config: ServeConfig) -> Self {
        config.validate();
        let metrics = Arc::new(Metrics::new());
        let obs = Arc::new(ObsPlane::new(config.obs, Arc::clone(&metrics)));
        if config.obs.enabled {
            // The flight recorder feeds on trace records; without spans
            // there is nothing to tail-sample. Kernel detail is sampled
            // at the configured stride so always-on tracing prices a
            // fraction of the solver iterations.
            mib_trace::enable();
            mib_trace::enable_kernel_spans();
            mib_trace::set_kernel_span_stride(config.obs.kernel_span_stride);
        }
        QpServer {
            config,
            metrics,
            router: Arc::new(BackendRouter::new()),
            obs,
            shadow_tick: AtomicU64::new(0),
            state: Mutex::new(ServerState {
                tenants: HashMap::new(),
                portfolios: HashMap::new(),
                shards: HashMap::new(),
                next_tenant: 0,
                next_portfolio: 0,
                tick: 0,
                accepting: true,
            }),
        }
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// The observability plane (flight recorder, rolling windows, SLO
    /// state). Always present; inert unless
    /// [`ObsConfig::enabled`](crate::ObsConfig) was set.
    pub fn obs(&self) -> Arc<ObsPlane> {
        Arc::clone(&self.obs)
    }

    /// The server configuration (read-only; fixed at construction).
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The shared backend router (per-structure solve-time telemetry
    /// behind portfolio routing).
    pub fn router(&self) -> Arc<BackendRouter> {
        Arc::clone(&self.router)
    }

    /// Live (warm) pattern shards.
    pub fn shard_count(&self) -> usize {
        self.state.lock().expect("server state lock").shards.len()
    }

    /// Registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.state.lock().expect("server state lock").tenants.len()
    }

    /// Registers a tenant: performs full solver setup (equilibration,
    /// ordering, factorization) on the template problem and warms the
    /// pattern shard so the first submission is served hot.
    ///
    /// # Errors
    ///
    /// [`RegisterError::Setup`] if the problem or settings are rejected,
    /// [`RegisterError::ShuttingDown`] after [`shutdown`](Self::shutdown).
    pub fn register(
        &self,
        problem: Problem,
        settings: Settings,
    ) -> Result<TenantId, RegisterError> {
        self.register_tenant(problem, settings).map(|(id, _)| id)
    }

    /// Registers a portfolio: the same problem prepared once per
    /// settings variant (typically one per solver [`Algorithm`]), each
    /// variant a full tenant with its own warm pool. Submissions through
    /// [`submit_routed`](Self::submit_routed) go to the variant whose
    /// recorded solve telemetry converges fastest for this structure.
    ///
    /// # Errors
    ///
    /// As [`register`](Self::register); the first failing variant aborts
    /// the portfolio.
    ///
    /// # Panics
    ///
    /// Panics if `variants` is empty.
    pub fn register_portfolio(
        &self,
        problem: &Problem,
        variants: Vec<Settings>,
    ) -> Result<PortfolioId, RegisterError> {
        assert!(
            !variants.is_empty(),
            "a portfolio needs at least one settings variant"
        );
        let mut tenants = Vec::with_capacity(variants.len());
        for settings in variants {
            let (_, tenant) = self.register_tenant(problem.clone(), settings)?;
            tenants.push(tenant);
        }
        let mut st = self.state.lock().expect("server state lock");
        if !st.accepting {
            return Err(RegisterError::ShuttingDown);
        }
        let id = st.next_portfolio;
        st.next_portfolio += 1;
        st.portfolios.insert(id, tenants);
        Ok(PortfolioId(id))
    }

    fn register_tenant(
        &self,
        problem: Problem,
        settings: Settings,
    ) -> Result<(TenantId, Arc<Tenant>), RegisterError> {
        // Setup is the expensive part; do it outside the registry lock.
        let pattern = PatternKey::of(&problem, settings.backend, settings.algorithm);
        let algorithm = settings.algorithm;
        let template = Solver::new(problem.clone(), settings)?;
        let evicted;
        let id;
        let tenant;
        {
            let mut st = self.state.lock().expect("server state lock");
            if !st.accepting {
                return Err(RegisterError::ShuttingDown);
            }
            id = st.next_tenant;
            st.next_tenant += 1;
            tenant = Arc::new(Tenant {
                id,
                pattern: pattern.clone(),
                algorithm,
                problem,
                template,
            });
            st.tenants.insert(id, Arc::clone(&tenant));
            evicted = self.touch_shard(&mut st, &pattern).1;
        }
        self.drain_evicted(evicted);
        Ok((TenantId(id), tenant))
    }

    /// Deregisters a tenant. In-flight and queued requests of the tenant
    /// still complete (workers hold their own `Arc<Tenant>`); new
    /// submissions fail with [`SubmitError::UnknownTenant`]. The pattern
    /// shard stays warm for other tenants until evicted.
    pub fn deregister(&self, tenant: TenantId) -> bool {
        self.state
            .lock()
            .expect("server state lock")
            .tenants
            .remove(&tenant.0)
            .is_some()
    }

    /// Submits a parametric request for `tenant`. Returns a [`Ticket`]
    /// on admission; rejects synchronously (backpressure) otherwise.
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownTenant`], [`SubmitError::QueueFull`] when
    /// the shard's bounded queue is at capacity, or
    /// [`SubmitError::ShuttingDown`].
    pub fn submit(&self, tenant: TenantId, request: Request) -> Result<Ticket, SubmitError> {
        let owner = {
            let st = self.state.lock().expect("server state lock");
            if !st.accepting {
                self.metrics.inc(&self.metrics.counters.rejected_shutdown);
                return Err(SubmitError::ShuttingDown);
            }
            Arc::clone(
                st.tenants
                    .get(&tenant.0)
                    .ok_or(SubmitError::UnknownTenant)?,
            )
        };
        self.submit_pending(&owner, request, None)
    }

    /// Submits a parametric request for a portfolio: the backend router
    /// picks the variant whose recorded solve times are fastest for this
    /// structure (exploring each variant first while cold). When shadow
    /// auditing is enabled ([`ServeConfig::shadow_every`]), every
    /// `shadow_every`-th routed submission is also re-solved on the next
    /// variant and the answers cross-checked into the `shadow_*`
    /// counters.
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit); [`SubmitError::UnknownTenant`] if the
    /// portfolio id was never registered.
    pub fn submit_routed(
        &self,
        portfolio: PortfolioId,
        request: Request,
    ) -> Result<Ticket, SubmitError> {
        let tenants = {
            let st = self.state.lock().expect("server state lock");
            if !st.accepting {
                self.metrics.inc(&self.metrics.counters.rejected_shutdown);
                return Err(SubmitError::ShuttingDown);
            }
            st.portfolios
                .get(&portfolio.0)
                .cloned()
                .ok_or(SubmitError::UnknownTenant)?
        };
        let candidates: Vec<Algorithm> = tenants.iter().map(|t| t.algorithm).collect();
        let structure = tenants[0].pattern.structure_digest();
        let algorithm = self.router.choose(structure, &candidates);
        let idx = tenants
            .iter()
            .position(|t| t.algorithm == algorithm)
            .expect("the chosen algorithm comes from the candidate list");
        let primary = Arc::clone(&tenants[idx]);
        let shadow = if self.config.shadow_every > 0 && tenants.len() > 1 {
            let tick = self.shadow_tick.fetch_add(1, Ordering::Relaxed);
            tick.is_multiple_of(self.config.shadow_every as u64)
                .then(|| Arc::clone(&tenants[(idx + 1) % tenants.len()]))
        } else {
            None
        };
        let ticket = self.submit_pending(&primary, request, shadow)?;
        self.metrics.inc(&self.metrics.counters.routed_portfolio);
        Ok(ticket)
    }

    fn submit_pending(
        &self,
        owner: &Arc<Tenant>,
        mut request: Request,
        mut shadow: Option<Arc<Tenant>>,
    ) -> Result<Ticket, SubmitError> {
        // A concurrent eviction can stop the shard between our lookup and
        // the enqueue; re-route (the touch re-creates the shard) a couple
        // of times before giving up. The rejected Pending travels back so
        // the request is moved, never cloned.
        for _ in 0..3 {
            let (shard, evicted) = {
                let mut st = self.state.lock().expect("server state lock");
                if !st.accepting {
                    self.metrics.inc(&self.metrics.counters.rejected_shutdown);
                    return Err(SubmitError::ShuttingDown);
                }
                self.touch_shard(&mut st, &owner.pattern)
            };
            self.drain_evicted(evicted);
            let now = Instant::now();
            let ticket = TicketShared::new();
            let pending = Pending {
                tenant: Arc::clone(owner),
                deadline: request.deadline.map(|d| now + d),
                request,
                ticket: Arc::clone(&ticket),
                submitted_at: now,
                shadow: shadow.take(),
            };
            match shard.enqueue(pending) {
                Ok(()) => return Ok(Ticket { shared: ticket }),
                // Shard was stopped by a concurrent eviction; retry.
                Err((SubmitError::ShuttingDown, rejected)) => {
                    request = rejected.request;
                    shadow = rejected.shadow;
                }
                Err((e, _)) => return Err(e),
            }
        }
        self.metrics.inc(&self.metrics.counters.rejected_shutdown);
        Err(SubmitError::ShuttingDown)
    }

    /// Stops accepting work, drains every shard queue and joins all
    /// worker threads. Every already-accepted ticket is fulfilled before
    /// this returns. Idempotent.
    pub fn shutdown(&self) {
        let shards: Vec<Arc<Shard>> = {
            let mut st = self.state.lock().expect("server state lock");
            st.accepting = false;
            st.shards.drain().map(|(_, slot)| slot.shard).collect()
        };
        for shard in &shards {
            shard.stop();
        }
        for shard in &shards {
            shard.join();
        }
    }

    /// Returns the (possibly new) shard for `pattern`, stamps its LRU
    /// tick, and hands back any shard evicted by the `max_shards` bound
    /// for the caller to drain outside the lock.
    fn touch_shard(
        &self,
        st: &mut ServerState,
        pattern: &PatternKey,
    ) -> (Arc<Shard>, Option<Arc<Shard>>) {
        st.tick += 1;
        let tick = st.tick;
        let c = &self.metrics.counters;
        if let Some(slot) = st.shards.get_mut(pattern) {
            self.metrics.inc(&c.shard_hits);
            slot.last_used = tick;
            return (Arc::clone(&slot.shard), None);
        }
        self.metrics.inc(&c.shard_misses);
        let shard = Shard::spawn(
            pattern.clone(),
            self.config.shard(),
            Arc::clone(&self.metrics),
            Arc::clone(&self.router),
            Arc::clone(&self.obs),
        );
        st.shards.insert(
            pattern.clone(),
            ShardSlot {
                shard: Arc::clone(&shard),
                last_used: tick,
            },
        );
        let evicted = if st.shards.len() > self.config.max_shards {
            let coldest = st
                .shards
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(key, _)| key.clone())
                .expect("shards cannot be empty here");
            self.metrics.inc(&c.shard_evictions);
            st.shards.remove(&coldest).map(|slot| slot.shard)
        } else {
            None
        };
        (shard, evicted)
    }

    /// Gracefully drains an evicted shard: queued requests are still
    /// served and their tickets fulfilled, then the workers exit.
    fn drain_evicted(&self, evicted: Option<Arc<Shard>>) {
        if let Some(shard) = evicted {
            shard.stop();
            shard.join();
        }
    }
}

impl Drop for QpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}
