//! mib-serve: a multi-tenant QP serving runtime on top of `mib-qp`.
//!
//! The solver stack below this crate answers one question: *how fast can
//! one problem be solved?* This crate answers the production question:
//! *how are thousands of parametric solves served concurrently without
//! losing the determinism story?* It is built from five pieces:
//!
//! - **Pattern sharding** ([`PatternKey`]): requests route by the
//!   structural identity of their QP (sparsity patterns + dimensions +
//!   backend). Each shard owns worker threads with warm per-tenant
//!   [`Solver`](mib_qp::Solver) clones, so steady-state serving pays no
//!   setup and no allocation. Cold shards are LRU-evicted.
//! - **Micro-batching**: workers coalesce same-pattern requests arriving
//!   within a bounded window into one back-to-back multi-solve, in the
//!   style of `mib_qp::BatchSolver`.
//! - **Admission control**: bounded queues reject with an explicit
//!   [`SubmitError::QueueFull`] (carrying observed depth and capacity)
//!   at the submission boundary; per-request deadlines and cancellation
//!   are observed by the ADMM loop at iteration-check boundaries;
//!   shutdown drains before it joins. In front of the queues, an
//!   [`AdmissionController`] adds per-tenant token-bucket rate limiting
//!   and weighted fair-share admission under congestion — the policy
//!   layer the `mib-net` wire front-end answers shed frames from.
//! - **Metrics** ([`Metrics`]): lock-free counters and fixed-bucket
//!   histograms wired through submit → queue → solve → complete, with a
//!   text snapshot export.
//! - **Portfolio routing** ([`BackendRouter`]): a problem registered
//!   under several solver algorithms (`register_portfolio`) is served by
//!   the backend whose recorded solve telemetry converges fastest for
//!   that structure, with an optional shadow-audit mode cross-checking a
//!   sampled fraction of answers between backends.
//!
//! # Determinism contract
//!
//! Serving never changes answers. A request is served by re-parameterizing
//! a warm clone of the tenant's template solver and solving from a reset
//! state, which `mib-qp` guarantees is bitwise-identical to a fresh clone
//! of the template given the same updates. The root `serve_soak` test and
//! the `serve_bench` harness verify this bitwise on every `Solved` answer.
//!
//! # Example
//!
//! ```
//! use mib_serve::{QpServer, Request, ServeConfig};
//! use mib_qp::{Problem, Settings};
//! use mib_sparse::CscMatrix;
//!
//! let p = CscMatrix::from_dense(2, 2, &[4.0, 1.0, 0.0, 2.0])
//!     .upper_triangle()
//!     .unwrap();
//! let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
//! let problem = Problem::new(
//!     p,
//!     vec![1.0, 1.0],
//!     a,
//!     vec![1.0, 0.0, 0.0],
//!     vec![1.0, 0.7, 0.7],
//! )
//! .unwrap();
//!
//! let server = QpServer::new(ServeConfig::default());
//! let tenant = server.register(problem, Settings::default()).unwrap();
//! let ticket = server
//!     .submit(tenant, Request::with_q(vec![0.5, 1.5]))
//!     .unwrap();
//! let response = ticket.wait();
//! assert!(response.outcome.is_solved());
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod metrics;
mod obs;
mod pattern;
mod request;
mod router;
mod server;
mod shard;

pub use admission::{
    queue_full_retry_after, AdmissionConfig, AdmissionController, TenantPolicy, TenantSlot, Verdict,
};
pub use metrics::{
    log2_buckets, BackendCounters, Counters, Histogram, Metrics, TenantCounters,
    BATCH_SIZE_BUCKETS, DEPTH_BUCKETS, FRAME_BYTES_BUCKETS, LATENCY_BUCKETS_US,
};
pub use obs::{BurnWindow, ObsConfig, ObsPlane, SloReport, WindowStats};
pub use pattern::PatternKey;
pub use request::{CancelHandle, Outcome, RegisterError, Request, Response, SubmitError, Ticket};
pub use router::BackendRouter;
pub use server::{PortfolioId, QpServer, ServeConfig, TenantId};
