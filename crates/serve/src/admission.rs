//! Admission control ahead of the bounded shard queues: per-tenant
//! token-bucket rate limiting plus weighted fair-share admission under
//! congestion.
//!
//! The shard queues reject with [`SubmitError::QueueFull`] when they are
//! already full — a *backstop*, not a policy. This module is the policy
//! layer the networked front-end (`mib-net`) places in front of
//! [`QpServer::submit`]: every tenant carries a [`TenantPolicy`]
//! (refill rate, burst, fair-share weight), and each submission is
//! checked *before* it touches a queue:
//!
//! 1. **Rate limiting**: a classic token bucket per tenant. A tenant
//!    exceeding its sustained rate is answered with
//!    [`Verdict::RateLimited`] carrying the exact time until the next
//!    token — the retry-after hint of the shed frame.
//! 2. **Fair share**: while the system is *congested* (a shard queue
//!    rejected recently), a tenant is admitted only while its share of
//!    recently admitted requests stays within `share_slack ×` its weight
//!    fraction. Recent admissions decay exponentially with half-life
//!    [`AdmissionConfig::window`], so a tenant that backs off regains
//!    its share smoothly. Under no congestion the fair-share check is
//!    inert: spare capacity is never withheld.
//!
//! Every decision lands in the per-tenant labelled counters of
//! [`Metrics`] (`mib_serve_admission_*_total{tenant="..."}`) plus the
//! global totals, so shed behavior is visible in the same snapshot as
//! the serving pipeline it protects.
//!
//! The controller is deliberately clock-explicit: every entry point
//! takes `now: Instant`, which makes the policy a pure function of its
//! call sequence — the unit tests replay deterministic timelines, and
//! callers cannot accidentally mix clocks.
//!
//! [`SubmitError::QueueFull`]: crate::SubmitError::QueueFull
//! [`QpServer::submit`]: crate::QpServer::submit

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::metrics::{Metrics, TenantCounters};

/// Per-tenant admission policy.
#[derive(Debug, Clone, Copy)]
pub struct TenantPolicy {
    /// Sustained token-bucket refill rate, requests per second.
    /// `f64::INFINITY` disables rate limiting for the tenant.
    pub rate_per_sec: f64,
    /// Bucket capacity: the largest burst admitted at once.
    pub burst: f64,
    /// Fair-share weight: under congestion, tenants are kept near
    /// admission shares proportional to their weights.
    pub weight: f64,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            rate_per_sec: f64::INFINITY,
            burst: 1.0,
            weight: 1.0,
        }
    }
}

impl TenantPolicy {
    fn validate(&self) {
        assert!(
            self.rate_per_sec > 0.0,
            "rate_per_sec must be positive (INFINITY disables)"
        );
        assert!(
            self.burst >= 1.0 && self.burst.is_finite(),
            "burst must be finite and >= 1"
        );
        assert!(
            self.weight > 0.0 && self.weight.is_finite(),
            "weight must be finite and positive"
        );
    }
}

/// Controller-wide knobs.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Half-life of the fair-share admission accounting, and the length
    /// of the congestion memory after a queue-full rejection.
    pub window: Duration,
    /// Slack multiplier over the exact weighted share before a congested
    /// tenant is shed (`>= 1`): `1.0` enforces shares exactly, larger
    /// values tolerate short bursts.
    pub share_slack: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            window: Duration::from_millis(100),
            share_slack: 1.25,
        }
    }
}

/// Outcome of one admission check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Pass the request on to `QpServer::submit`.
    Admit,
    /// The tenant's token bucket is empty.
    RateLimited {
        /// Time until the bucket refills one token.
        retry_after: Duration,
    },
    /// The system is congested and the tenant is over its weighted
    /// share of recent admissions.
    OverShare {
        /// Suggested backoff (a fraction of the fairness window).
        retry_after: Duration,
    },
}

/// Opaque index of a registered tenant within its controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSlot(usize);

#[derive(Debug)]
struct TenantState {
    policy: TenantPolicy,
    /// Token bucket level; starts full.
    tokens: f64,
    refilled_at: Instant,
    /// Exponentially decayed count of recent admissions.
    admitted_recent: f64,
    decayed_at: Instant,
    counters: Arc<TenantCounters>,
}

impl TenantState {
    /// Applies bucket refill and fair-share decay up to `now`.
    fn advance(&mut self, window: Duration, now: Instant) {
        let dt = now
            .saturating_duration_since(self.refilled_at)
            .as_secs_f64();
        if dt > 0.0 && self.policy.rate_per_sec.is_finite() {
            self.tokens = (self.tokens + dt * self.policy.rate_per_sec).min(self.policy.burst);
        }
        self.refilled_at = now;
        let dt = now.saturating_duration_since(self.decayed_at).as_secs_f64();
        if dt > 0.0 {
            let half_lives = dt / window.as_secs_f64().max(1e-9);
            self.admitted_recent *= 0.5f64.powf(half_lives);
        }
        self.decayed_at = now;
    }
}

#[derive(Debug)]
struct ControllerState {
    tenants: Vec<TenantState>,
    total_weight: f64,
    /// Congestion memory: set by queue-full rejections, arms the
    /// fair-share check until it expires.
    congested_until: Option<Instant>,
}

/// Per-tenant token-bucket rate limiting plus weighted fair-share
/// admission (see the module docs for the policy).
#[derive(Debug)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    metrics: Arc<Metrics>,
    state: Mutex<ControllerState>,
}

impl AdmissionController {
    /// A controller publishing its decisions into `metrics`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate.
    pub fn new(cfg: AdmissionConfig, metrics: Arc<Metrics>) -> Self {
        assert!(!cfg.window.is_zero(), "window must be positive");
        assert!(
            cfg.share_slack >= 1.0 && cfg.share_slack.is_finite(),
            "share_slack must be finite and >= 1"
        );
        AdmissionController {
            cfg,
            metrics,
            state: Mutex::new(ControllerState {
                tenants: Vec::new(),
                total_weight: 0.0,
                congested_until: None,
            }),
        }
    }

    /// Registers a tenant under `label` (the metrics dimension) with the
    /// given policy; the returned slot indexes every later check.
    ///
    /// # Panics
    ///
    /// Panics if the policy is degenerate.
    pub fn register(&self, label: &str, policy: TenantPolicy, now: Instant) -> TenantSlot {
        policy.validate();
        let counters = self.metrics.tenant_admission(label);
        let mut st = self.state.lock().expect("admission state lock");
        st.total_weight += policy.weight;
        st.tenants.push(TenantState {
            policy,
            tokens: policy.burst,
            refilled_at: now,
            admitted_recent: 0.0,
            decayed_at: now,
            counters,
        });
        TenantSlot(st.tenants.len() - 1)
    }

    /// Checks (and on success consumes) one admission for `slot` at
    /// `now`, recording the decision in the metrics.
    pub fn admit(&self, slot: TenantSlot, now: Instant) -> Verdict {
        let mut st = self.state.lock().expect("admission state lock");
        let congested = st.congested_until.is_some_and(|until| now < until);
        let total_weight = st.total_weight;
        // Fair share compares this tenant against the decayed admission
        // total across all tenants; bring every account up to `now`.
        let mut total_recent = 0.0;
        for t in &mut st.tenants {
            t.advance(self.cfg.window, now);
            total_recent += t.admitted_recent;
        }
        let t = &mut st.tenants[slot.0];
        let rate_limited = t.policy.rate_per_sec.is_finite();
        if rate_limited && t.tokens < 1.0 {
            let deficit = 1.0 - t.tokens;
            let retry_after = Duration::from_secs_f64(deficit / t.policy.rate_per_sec);
            t.counters.shed_rate_limited.fetch_add(1, ord());
            drop(st);
            self.metrics.inc(&self.metrics.counters.shed_rate_limited);
            return Verdict::RateLimited { retry_after };
        }
        if congested {
            // Would admitting this request push the tenant past
            // slack × its weight fraction of recent admissions? The
            // `+ 1.0` grace term keeps a cold account admissible (the
            // exact share bound is unsatisfiable from zero admissions)
            // while vanishing against any sustained hog.
            let weight_frac = self.cfg.share_slack * t.policy.weight / total_weight;
            let bound = weight_frac * (total_recent + 1.0) + 1.0;
            if t.admitted_recent + 1.0 > bound {
                t.counters.shed_over_share.fetch_add(1, ord());
                drop(st);
                self.metrics.inc(&self.metrics.counters.shed_over_share);
                return Verdict::OverShare {
                    retry_after: self.cfg.window / 4,
                };
            }
        }
        if rate_limited {
            t.tokens -= 1.0;
        }
        t.admitted_recent += 1.0;
        t.counters.admitted.fetch_add(1, ord());
        drop(st);
        self.metrics.inc(&self.metrics.counters.admitted);
        Verdict::Admit
    }

    /// Records a queue-full rejection for `slot`: counts the shed and
    /// arms the congestion memory (fair-share checks stay active for one
    /// window past the last rejection).
    pub fn note_queue_full(&self, slot: TenantSlot, now: Instant) {
        let mut st = self.state.lock().expect("admission state lock");
        st.congested_until = Some(now + self.cfg.window);
        st.tenants[slot.0]
            .counters
            .shed_queue_full
            .fetch_add(1, ord());
        drop(st);
        self.metrics.inc(&self.metrics.counters.shed_queue_full);
    }

    /// Whether the congestion memory is armed at `now`.
    pub fn congested(&self, now: Instant) -> bool {
        self.state
            .lock()
            .expect("admission state lock")
            .congested_until
            .is_some_and(|until| now < until)
    }
}

const fn ord() -> std::sync::atomic::Ordering {
    std::sync::atomic::Ordering::Relaxed
}

/// Retry-after hint for a queue-full shed: the expected time for the
/// rejecting queue to drain enough for a retry to land, from the depth
/// observed at rejection and the mean service time the workers are
/// currently sustaining. Clamped to `[1ms, 1s]` so a cold (or absurd)
/// mean can never produce a zero or unbounded hint.
pub fn queue_full_retry_after(depth: usize, workers: usize, mean_service: Duration) -> Duration {
    let per_worker = depth.div_ceil(workers.max(1)) as u32;
    let hint = mean_service.max(Duration::from_micros(100)) * per_worker;
    hint.clamp(Duration::from_millis(1), Duration::from_secs(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(cfg: AdmissionConfig) -> AdmissionController {
        AdmissionController::new(cfg, Arc::new(Metrics::new()))
    }

    #[test]
    fn unlimited_tenant_is_always_admitted() {
        let c = controller(AdmissionConfig::default());
        let t0 = Instant::now();
        let slot = c.register("a", TenantPolicy::default(), t0);
        for i in 0..1000 {
            assert_eq!(c.admit(slot, t0 + Duration::from_micros(i)), Verdict::Admit);
        }
    }

    #[test]
    fn token_bucket_limits_sustained_rate_and_reports_retry_after() {
        let c = controller(AdmissionConfig::default());
        let t0 = Instant::now();
        // 10 req/s, burst of 2.
        let slot = c.register(
            "a",
            TenantPolicy {
                rate_per_sec: 10.0,
                burst: 2.0,
                weight: 1.0,
            },
            t0,
        );
        assert_eq!(c.admit(slot, t0), Verdict::Admit);
        assert_eq!(c.admit(slot, t0), Verdict::Admit);
        let Verdict::RateLimited { retry_after } = c.admit(slot, t0) else {
            panic!("an empty bucket must rate-limit");
        };
        // One token at 10/s takes 100ms.
        assert!((retry_after.as_secs_f64() - 0.1).abs() < 1e-9);
        // After the hint elapses, exactly one more is admitted.
        let t1 = t0 + retry_after;
        assert_eq!(c.admit(slot, t1), Verdict::Admit);
        assert!(matches!(c.admit(slot, t1), Verdict::RateLimited { .. }));
    }

    #[test]
    fn bucket_refill_caps_at_burst() {
        let c = controller(AdmissionConfig::default());
        let t0 = Instant::now();
        let slot = c.register(
            "a",
            TenantPolicy {
                rate_per_sec: 1000.0,
                burst: 3.0,
                weight: 1.0,
            },
            t0,
        );
        // A long idle period must not accumulate more than `burst`.
        let t1 = t0 + Duration::from_mins(1);
        for _ in 0..3 {
            assert_eq!(c.admit(slot, t1), Verdict::Admit);
        }
        assert!(matches!(c.admit(slot, t1), Verdict::RateLimited { .. }));
    }

    #[test]
    fn fair_share_is_inert_without_congestion() {
        let c = controller(AdmissionConfig {
            share_slack: 1.0,
            ..AdmissionConfig::default()
        });
        let t0 = Instant::now();
        let a = c.register("a", TenantPolicy::default(), t0);
        let _b = c.register("b", TenantPolicy::default(), t0);
        // Tenant a takes everything: fine while nothing is congested.
        for _ in 0..100 {
            assert_eq!(c.admit(a, t0), Verdict::Admit);
        }
    }

    #[test]
    fn congestion_sheds_the_over_share_tenant_but_not_the_other() {
        let cfg = AdmissionConfig {
            window: Duration::from_millis(100),
            share_slack: 1.0,
        };
        let c = controller(cfg);
        let t0 = Instant::now();
        let a = c.register("a", TenantPolicy::default(), t0);
        let b = c.register("b", TenantPolicy::default(), t0);
        // a hogs admissions, then a queue rejection arms congestion.
        for _ in 0..50 {
            assert_eq!(c.admit(a, t0), Verdict::Admit);
        }
        c.note_queue_full(a, t0);
        assert!(c.congested(t0));
        // a is far past its 50% share; b is under.
        assert!(matches!(c.admit(a, t0), Verdict::OverShare { .. }));
        assert_eq!(c.admit(b, t0), Verdict::Admit);
        // The decayed accounting lets a back in once its recent share
        // fades (5 half-lives) — congestion is re-armed to still be live.
        let t1 = t0 + Duration::from_millis(90);
        c.note_queue_full(b, t1);
        let t2 = t1 + Duration::from_millis(9);
        assert!(c.congested(t2));
        // After ~1 half-life a's count halved but is still over-share...
        assert!(matches!(c.admit(a, t2), Verdict::OverShare { .. }));
        // ...and b can still get in.
        assert_eq!(c.admit(b, t2), Verdict::Admit);
    }

    #[test]
    fn congestion_expires_after_one_window() {
        let cfg = AdmissionConfig {
            window: Duration::from_millis(100),
            share_slack: 1.0,
        };
        let c = controller(cfg);
        let t0 = Instant::now();
        let a = c.register("a", TenantPolicy::default(), t0);
        let _b = c.register("b", TenantPolicy::default(), t0);
        for _ in 0..10 {
            assert_eq!(c.admit(a, t0), Verdict::Admit);
        }
        c.note_queue_full(a, t0);
        assert!(matches!(c.admit(a, t0), Verdict::OverShare { .. }));
        let t1 = t0 + Duration::from_millis(101);
        assert!(!c.congested(t1));
        assert_eq!(c.admit(a, t1), Verdict::Admit);
    }

    #[test]
    fn weights_shift_the_congested_shares() {
        let cfg = AdmissionConfig {
            window: Duration::from_hours(1), // effectively no decay
            share_slack: 1.0,
        };
        let c = controller(cfg);
        let t0 = Instant::now();
        let heavy = c.register(
            "heavy",
            TenantPolicy {
                weight: 3.0,
                ..TenantPolicy::default()
            },
            t0,
        );
        let light = c.register("light", TenantPolicy::default(), t0);
        c.note_queue_full(light, t0);
        // Alternating attempts: heavy should land ~3x light's admissions.
        let mut admitted = [0u32; 2];
        for _ in 0..100 {
            if c.admit(heavy, t0) == Verdict::Admit {
                admitted[0] += 1;
            }
            if c.admit(light, t0) == Verdict::Admit {
                admitted[1] += 1;
            }
            // Keep the congestion memory armed across the whole loop
            // (zero wall time passes, but stay explicit).
            c.note_queue_full(light, t0);
        }
        assert!(
            admitted[0] >= 2 * admitted[1] && admitted[1] > 0,
            "weighted shares must hold under congestion: {admitted:?}"
        );
    }

    #[test]
    fn decisions_land_in_the_labelled_metrics() {
        let metrics = Arc::new(Metrics::new());
        let c = AdmissionController::new(AdmissionConfig::default(), Arc::clone(&metrics));
        let t0 = Instant::now();
        let slot = c.register(
            "tenant-x",
            TenantPolicy {
                rate_per_sec: 1.0,
                burst: 1.0,
                weight: 1.0,
            },
            t0,
        );
        assert_eq!(c.admit(slot, t0), Verdict::Admit);
        assert!(matches!(c.admit(slot, t0), Verdict::RateLimited { .. }));
        c.note_queue_full(slot, t0);
        let text = metrics.render();
        assert!(text.contains("mib_serve_admission_admitted_total{tenant=\"tenant-x\"} 1"));
        assert!(text.contains("mib_serve_admission_shed_rate_limited_total{tenant=\"tenant-x\"} 1"));
        assert!(text.contains("mib_serve_admission_shed_queue_full_total{tenant=\"tenant-x\"} 1"));
        assert!(text.contains("mib_serve_admitted_total 1"));
        assert!(text.contains("mib_serve_shed_rate_limited_total 1"));
    }

    #[test]
    fn queue_full_retry_hint_is_clamped_and_scales_with_depth() {
        let hint = queue_full_retry_after(8, 2, Duration::from_millis(2));
        assert_eq!(hint, Duration::from_millis(8));
        // Zero/absurd inputs clamp instead of degenerating.
        assert_eq!(
            queue_full_retry_after(0, 2, Duration::ZERO),
            Duration::from_millis(1)
        );
        assert_eq!(
            queue_full_retry_after(1_000_000, 1, Duration::from_secs(5)),
            Duration::from_secs(1)
        );
    }
}
