//! Lock-free serving metrics: atomic counters plus fixed-bucket
//! histograms, with a text snapshot export.
//!
//! Every hot-path observation is a relaxed atomic increment — no locks,
//! no allocation — so the metrics layer cannot introduce contention into
//! the submit → queue → solve → complete pipeline it measures. The
//! exporter ([`Metrics::render`]) produces a stable, Prometheus-flavored
//! text snapshot (`mib_serve_*` lines) suitable for scraping or for the
//! trace reports under `results/`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mib_qp::{Algorithm, ALGORITHM_COUNT};

/// Relaxed ordering everywhere: counters are statistics, not
/// synchronization.
const ORD: Ordering = Ordering::Relaxed;

/// Upper bucket bounds (inclusive) of the latency histograms, in
/// microseconds; the last bucket is unbounded. Powers of four cover
/// sub-microsecond solves up to multi-second stragglers in 11 buckets.
pub const LATENCY_BUCKETS_US: [u64; 10] =
    [1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144];

/// Upper bucket bounds (inclusive) of the queue-depth histogram; the last
/// bucket is unbounded.
pub const DEPTH_BUCKETS: [u64; 8] = [0, 1, 2, 4, 8, 16, 32, 64];

/// Upper bucket bounds (inclusive) of the wire-frame-size histogram,
/// bytes; the last bucket is unbounded. Powers of eight cover the
/// 18-byte cancel frame up to multi-megabyte warm-start payloads.
pub const FRAME_BYTES_BUCKETS: [u64; 8] = [
    32, 256, 2_048, 16_384, 131_072, 1_048_576, 8_388_608, 67_108_864,
];

/// Log-spaced (power-of-two) bucket bounds starting at 1: the preset
/// for small-count gauges (queue depths, batch sizes) whose interesting
/// range is 1..few-thousand — doubling buckets give constant relative
/// resolution where the fixed latency preset would waste buckets.
pub const fn log2_buckets<const B: usize>() -> [u64; B] {
    let mut bounds = [0u64; B];
    let mut i = 0;
    while i < B {
        bounds[i] = 1 << i;
        i += 1;
    }
    bounds
}

/// Upper bucket bounds (inclusive) of the micro-batch-size histogram:
/// log-spaced 1..=2048, the preset sized for batch/depth gauges.
pub const BATCH_SIZE_BUCKETS: [u64; 12] = log2_buckets();

/// A fixed-bucket histogram over `u64` samples (microseconds or queue
/// depths). `B` bounded buckets plus one overflow bucket, a running sum
/// and a count — everything atomic.
#[derive(Debug)]
pub struct Histogram<const B: usize> {
    bounds: [u64; B],
    buckets: [AtomicU64; B],
    overflow: AtomicU64,
    sum: AtomicU64,
    count: AtomicU64,
}

impl<const B: usize> Histogram<B> {
    /// An empty histogram with the given inclusive upper bounds.
    pub fn new(bounds: [u64; B]) -> Self {
        Histogram {
            bounds,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn observe(&self, value: u64) {
        match self.bounds.iter().position(|&b| value <= b) {
            Some(i) => self.buckets[i].fetch_add(1, ORD),
            None => self.overflow.fetch_add(1, ORD),
        };
        // The running sum saturates instead of wrapping: long-lived servers
        // feeding u64::MAX-saturated duration samples must never wrap the
        // sum back to a small value and report a bogus mean.
        let mut cur = self.sum.load(ORD);
        loop {
            let next = cur.saturating_add(value);
            match self.sum.compare_exchange_weak(cur, next, ORD, ORD) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        self.count.fetch_add(1, ORD);
    }

    /// Records a duration in microseconds (saturating).
    pub fn observe_duration(&self, d: Duration) {
        self.observe(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(ORD)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(ORD)
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Smallest bucket bound at or below which at least `q` (0..=1) of
    /// the samples fall — an upper estimate of the q-quantile. Overflow
    /// samples report `u64::MAX`.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // At least one sample must be covered: q = 0.0 reports the bucket
        // of the minimum sample, not the first (possibly empty) bound.
        let target = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(ORD);
            if seen >= target {
                return self.bounds[i];
            }
        }
        u64::MAX
    }

    /// Appends `name_bucket{le=...}` / `_sum` / `_count` lines.
    fn render_into(&self, name: &str, out: &mut String) {
        let mut cumulative = 0;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(ORD);
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                self.bounds[i]
            );
        }
        cumulative += self.overflow.load(ORD);
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum {}", self.sum());
        let _ = writeln!(out, "{name}_count {}", self.count());
    }
}

/// One named atomic counter of the registry.
macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        /// Monotonic event counters of the serving pipeline.
        #[derive(Debug, Default)]
        pub struct Counters {
            $($(#[$doc])* pub $name: AtomicU64,)+
        }

        impl Counters {
            fn render_into(&self, out: &mut String) {
                $(
                    let _ = writeln!(
                        out,
                        concat!("mib_serve_", stringify!($name), "_total {}"),
                        self.$name.load(ORD)
                    );
                )+
            }
        }
    };
}

counters! {
    /// Requests accepted into a shard queue.
    submitted,
    /// Requests that reached a terminal response.
    completed,
    /// Requests whose solve converged (`Status::Solved`).
    solved,
    /// Requests that hit the iteration limit.
    max_iterations,
    /// Requests whose solve detected primal/dual infeasibility.
    infeasible,
    /// Requests that hit their deadline inside the ADMM loop.
    timed_out,
    /// Requests cancelled inside the ADMM loop.
    cancelled,
    /// Requests whose deadline expired before the solve started.
    expired,
    /// Requests cancelled before the solve started.
    cancelled_before_start,
    /// Requests with invalid parametric data (update rejected).
    failed,
    /// Submissions rejected because the shard queue was full.
    rejected_queue_full,
    /// Submissions rejected because the server was shutting down.
    rejected_shutdown,
    /// Submissions routed to an already-warm pattern shard.
    shard_hits,
    /// Submissions (or registrations) that had to build a shard.
    shard_misses,
    /// Warm shards evicted by the LRU bound.
    shard_evictions,
    /// Solves served by an already-warm per-tenant solver.
    warm_hits,
    /// Solves that had to clone a tenant template first.
    warm_builds,
    /// Micro-batches drained by shard workers.
    batches,
    /// Requests served through micro-batches (sum of batch sizes).
    batched_requests,
    /// Portfolio submissions routed by the backend router and admitted.
    routed_portfolio,
    /// Shadow audits started (a sampled request re-solved on a second
    /// backend).
    shadow_audits,
    /// Shadow audits where both backends reached consistent answers.
    shadow_agreements,
    /// Shadow audits where the backends disagreed beyond tolerance.
    shadow_mismatches,
    /// Shadow audits with no verdict (either solve non-terminal).
    shadow_inconclusive,
    /// Requests admitted by the admission controller (all tenants).
    admitted,
    /// Requests shed by per-tenant token-bucket rate limiting.
    shed_rate_limited,
    /// Requests shed by weighted fair-share under congestion.
    shed_over_share,
    /// Queue-full sheds recorded by the admission controller (the
    /// explicit shed-frame counterpart of `rejected_queue_full`).
    shed_queue_full,
    /// TCP connections accepted by the networked front-end.
    net_connections_opened,
    /// TCP connections torn down (cleanly or on protocol error).
    net_connections_closed,
    /// Wire frames decoded from clients.
    net_frames_received,
    /// Wire frames sent to clients.
    net_frames_sent,
    /// Frames rejected by the decoder (bad magic/version/kind, torn
    /// length, oversized, malformed payload).
    net_frame_decode_errors,
    /// Connections dropped at the hello handshake (unknown token).
    net_auth_failures,
    /// Responses that met the SLO (within the latency objective and
    /// terminal by convergence). Only counted when the observability
    /// plane is enabled.
    slo_good,
    /// Responses that violated the SLO (too slow, expired, timed out or
    /// failed). Only counted when the observability plane is enabled.
    slo_bad,
    /// Anomalous requests retained by the flight recorder.
    flight_kept,
    /// Flight records evicted by the ring bound.
    flight_evicted,
}

/// Per-backend solve counters: every cell is keyed by
/// [`Algorithm::index`], and the rendered snapshot labels each line with
/// a `backend="..."` dimension
/// (`mib_serve_backend_solves_total{backend="admm"}`).
#[derive(Debug, Default)]
pub struct BackendCounters {
    solves: [AtomicU64; ALGORITHM_COUNT],
    solved: [AtomicU64; ALGORITHM_COUNT],
    iterations: [AtomicU64; ALGORITHM_COUNT],
    solve_micros: [AtomicU64; ALGORITHM_COUNT],
}

impl BackendCounters {
    /// Records one terminal solve served by `algorithm`.
    pub fn record(&self, algorithm: Algorithm, converged: bool, iterations: u64, micros: u64) {
        let i = algorithm.index();
        self.solves[i].fetch_add(1, ORD);
        if converged {
            self.solved[i].fetch_add(1, ORD);
        }
        self.iterations[i].fetch_add(iterations, ORD);
        self.solve_micros[i].fetch_add(micros, ORD);
    }

    /// Terminal solves served by `algorithm`.
    pub fn solves(&self, algorithm: Algorithm) -> u64 {
        self.solves[algorithm.index()].load(ORD)
    }

    /// Converged solves served by `algorithm`.
    pub fn solved(&self, algorithm: Algorithm) -> u64 {
        self.solved[algorithm.index()].load(ORD)
    }

    /// Total solver iterations spent by `algorithm`.
    pub fn iterations(&self, algorithm: Algorithm) -> u64 {
        self.iterations[algorithm.index()].load(ORD)
    }

    /// Total solve wall time spent by `algorithm`, µs.
    pub fn solve_micros(&self, algorithm: Algorithm) -> u64 {
        self.solve_micros[algorithm.index()].load(ORD)
    }

    fn render_into(&self, out: &mut String) {
        // Labelled series render in sorted label order within each
        // metric, independent of enum declaration order, so snapshot
        // diffs stay stable (`Algorithm::all()` happens to be sorted
        // today; don't rely on it).
        let mut algos: Vec<Algorithm> = Algorithm::all().to_vec();
        algos.sort_by_key(|a| a.name());
        for (name, cells) in [
            ("solves", &self.solves),
            ("solved", &self.solved),
            ("iterations", &self.iterations),
            ("solve_micros", &self.solve_micros),
        ] {
            for algo in &algos {
                let _ = writeln!(
                    out,
                    "mib_serve_backend_{name}_total{{backend=\"{}\"}} {}",
                    algo.name(),
                    cells[algo.index()].load(ORD)
                );
            }
        }
    }
}

/// Per-tenant admission counters, labelled by the tenant string in the
/// rendered snapshot
/// (`mib_serve_admission_admitted_total{tenant="..."}`). Handles are
/// shared `Arc`s: the admission controller caches one per tenant, so
/// hot-path decisions are plain atomic increments — the registry mutex
/// is touched only at registration and render time.
#[derive(Debug, Default)]
pub struct TenantCounters {
    /// Requests admitted for the tenant.
    pub admitted: AtomicU64,
    /// Requests shed by the tenant's token bucket.
    pub shed_rate_limited: AtomicU64,
    /// Requests shed by fair share under congestion.
    pub shed_over_share: AtomicU64,
    /// Queue-full sheds attributed to the tenant.
    pub shed_queue_full: AtomicU64,
}

/// The serving metrics registry: counters plus latency/depth histograms.
///
/// Shared by reference (`Arc`) between the server, its shards and the
/// caller; every field is individually atomic.
#[derive(Debug)]
pub struct Metrics {
    /// Event counters.
    pub counters: Counters,
    /// Per-backend (algorithm-labelled) solve counters.
    pub backend: BackendCounters,
    /// Time from submission to the start of the solve, µs.
    pub queue_wait: Histogram<10>,
    /// Solve (service) time, µs.
    pub service: Histogram<10>,
    /// End-to-end latency (submission to terminal response), µs.
    pub e2e: Histogram<10>,
    /// Shard queue depth observed at each enqueue.
    pub queue_depth: Histogram<8>,
    /// Micro-batch sizes drained by shard workers (log-spaced buckets).
    pub batch_size: Histogram<12>,
    /// Wire-frame sizes (bytes) seen by the networked front-end, both
    /// directions.
    pub net_frame_bytes: Histogram<8>,
    /// Per-tenant admission counters, keyed by tenant label. `BTreeMap`
    /// so the rendered series are sorted by label regardless of
    /// registration order.
    tenant_admission: Mutex<BTreeMap<String, Arc<TenantCounters>>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            counters: Counters::default(),
            backend: BackendCounters::default(),
            queue_wait: Histogram::new(LATENCY_BUCKETS_US),
            service: Histogram::new(LATENCY_BUCKETS_US),
            e2e: Histogram::new(LATENCY_BUCKETS_US),
            queue_depth: Histogram::new(DEPTH_BUCKETS),
            batch_size: Histogram::new(BATCH_SIZE_BUCKETS),
            net_frame_bytes: Histogram::new(FRAME_BYTES_BUCKETS),
            tenant_admission: Mutex::new(BTreeMap::new()),
        }
    }
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Bumps a counter by one. (Convenience for call sites holding only
    /// the registry.)
    pub fn inc(&self, counter: &AtomicU64) {
        counter.fetch_add(1, ORD);
    }

    /// The admission-counter handle for `label`, creating it on first
    /// use. The returned `Arc` is cached by callers (the admission
    /// controller) so decisions never re-enter the registry lock.
    pub fn tenant_admission(&self, label: &str) -> Arc<TenantCounters> {
        let mut registry = self
            .tenant_admission
            .lock()
            .expect("tenant admission registry lock");
        Arc::clone(registry.entry(label.to_string()).or_default())
    }

    /// Snapshot of every tenant's admission counters, sorted by label:
    /// `(label, admitted, shed_rate_limited, shed_over_share,
    /// shed_queue_full)`.
    pub fn tenant_admission_snapshot(&self) -> Vec<(String, u64, u64, u64, u64)> {
        let registry = self
            .tenant_admission
            .lock()
            .expect("tenant admission registry lock");
        registry
            .iter()
            .map(|(label, c)| {
                (
                    label.clone(),
                    c.admitted.load(ORD),
                    c.shed_rate_limited.load(ORD),
                    c.shed_over_share.load(ORD),
                    c.shed_queue_full.load(ORD),
                )
            })
            .collect()
    }

    /// Renders the whole registry as Prometheus-flavored text lines
    /// (`mib_serve_*`). Stable ordering — labelled series (backend,
    /// tenant) emit in sorted label order — so snapshots diff cleanly
    /// across runs and are suitable for golden files.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.counters.render_into(&mut out);
        self.backend.render_into(&mut out);
        let tenants = self.tenant_admission_snapshot();
        for (name, field) in [
            ("admitted", 0usize),
            ("shed_rate_limited", 1),
            ("shed_over_share", 2),
            ("shed_queue_full", 3),
        ] {
            for (label, admitted, rate_limited, over_share, queue_full) in &tenants {
                let value = [*admitted, *rate_limited, *over_share, *queue_full][field];
                let _ = writeln!(
                    out,
                    "mib_serve_admission_{name}_total{{tenant=\"{label}\"}} {value}"
                );
            }
        }
        self.queue_wait
            .render_into("mib_serve_queue_wait_micros", &mut out);
        self.service
            .render_into("mib_serve_service_micros", &mut out);
        self.e2e.render_into("mib_serve_e2e_micros", &mut out);
        self.queue_depth
            .render_into("mib_serve_queue_depth", &mut out);
        self.batch_size
            .render_into("mib_serve_batch_size", &mut out);
        self.net_frame_bytes
            .render_into("mib_serve_net_frame_bytes", &mut out);
        // Derived latency breakdown: where the end-to-end time goes
        // (queueing vs solving), as mean/p50/p99 summaries of the same
        // histograms — the text-report companion to the per-request
        // `request`/`solve_request` trace spans.
        for (name, h) in [
            ("queue_wait", &self.queue_wait),
            ("service", &self.service),
            ("e2e", &self.e2e),
        ] {
            let _ = writeln!(out, "mib_serve_{name}_micros_mean {:.3}", h.mean());
            for (label, q) in [("p50", 0.5), ("p99", 0.99)] {
                let _ = writeln!(
                    out,
                    "mib_serve_{name}_micros_{label} {}",
                    h.quantile_bound(q)
                );
            }
        }
        // Span loss visibility: the trace layer's process-lifetime count
        // of records dropped by full thread buffers. Silent loss in the
        // flight recorder's source would otherwise be invisible.
        let _ = writeln!(
            out,
            "mib_trace_dropped_records_total {}",
            mib_trace::total_dropped()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h: Histogram<10> = Histogram::new(LATENCY_BUCKETS_US);
        for v in [1u64, 3, 10, 100, 1000, 1_000_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1 + 3 + 10 + 100 + 1000 + 1_000_000);
        // Half the samples are <= 16µs.
        assert!(h.quantile_bound(0.5) <= 16);
        // The overflow sample (1s) pushes the max quantile to +Inf.
        assert_eq!(h.quantile_bound(1.0), u64::MAX);
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn duration_observation_saturates_micros() {
        let h: Histogram<10> = Histogram::new(LATENCY_BUCKETS_US);
        h.observe_duration(Duration::from_micros(5));
        h.observe_duration(Duration::from_secs(10));
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn render_contains_every_counter_and_histogram() {
        let m = Metrics::new();
        m.inc(&m.counters.submitted);
        m.inc(&m.counters.solved);
        m.queue_wait.observe(3);
        m.queue_depth.observe(1);
        let text = m.render();
        assert!(text.contains("mib_serve_submitted_total 1"));
        assert!(text.contains("mib_serve_solved_total 1"));
        assert!(text.contains("mib_serve_completed_total 0"));
        assert!(text.contains("mib_serve_queue_wait_micros_count 1"));
        assert!(text.contains("mib_serve_queue_depth_bucket{le=\"1\"} 1"));
        assert!(text.contains("mib_serve_e2e_micros_bucket{le=\"+Inf\"} 0"));
    }

    #[test]
    fn backend_counters_render_with_a_backend_label() {
        let m = Metrics::new();
        m.backend.record(Algorithm::Admm, true, 75, 1200);
        m.backend.record(Algorithm::Admm, false, 4000, 9000);
        m.backend.record(Algorithm::Pdqp, true, 310, 800);
        assert_eq!(m.backend.solves(Algorithm::Admm), 2);
        assert_eq!(m.backend.solved(Algorithm::Admm), 1);
        assert_eq!(m.backend.iterations(Algorithm::Admm), 4075);
        assert_eq!(m.backend.solve_micros(Algorithm::Pdqp), 800);
        let text = m.render();
        assert!(text.contains("mib_serve_backend_solves_total{backend=\"admm\"} 2"));
        assert!(text.contains("mib_serve_backend_solves_total{backend=\"pdqp\"} 1"));
        assert!(text.contains("mib_serve_backend_solved_total{backend=\"pdqp\"} 1"));
        assert!(text.contains("mib_serve_backend_iterations_total{backend=\"admm\"} 4075"));
        assert!(text.contains("mib_serve_shadow_mismatches_total 0"));
        assert!(text.contains("mib_serve_routed_portfolio_total 0"));
    }

    #[test]
    fn labelled_series_render_sorted_regardless_of_registration_order() {
        let m = Metrics::new();
        // Register tenants in reverse-sorted order; the render must come
        // out sorted by label anyway.
        for label in ["zeta", "alpha", "mid"] {
            m.tenant_admission(label).admitted.fetch_add(1, ORD);
        }
        let text = m.render();
        let tenant_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("mib_serve_admission_admitted_total"))
            .collect();
        assert_eq!(tenant_lines.len(), 3);
        let mut sorted = tenant_lines.clone();
        sorted.sort_unstable();
        assert_eq!(tenant_lines, sorted, "tenant series must be sorted");
        let backend_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("mib_serve_backend_solves_total"))
            .collect();
        let mut sorted = backend_lines.clone();
        sorted.sort_unstable();
        assert_eq!(backend_lines, sorted, "backend series must be sorted");
        // Two renders of the same registry are identical.
        assert_eq!(text, m.render());
    }

    #[test]
    fn tenant_counters_are_shared_handles() {
        let m = Metrics::new();
        let h1 = m.tenant_admission("t");
        let h2 = m.tenant_admission("t");
        h1.shed_queue_full.fetch_add(2, ORD);
        assert_eq!(h2.shed_queue_full.load(ORD), 2);
        assert_eq!(
            m.tenant_admission_snapshot(),
            vec![("t".to_string(), 0, 0, 0, 2)]
        );
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h: Histogram<8> = Histogram::new(DEPTH_BUCKETS);
        assert_eq!(h.quantile_bound(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn quantile_edge_cases() {
        let h: Histogram<8> = Histogram::new(DEPTH_BUCKETS);
        // Empty: every quantile is 0, including the extremes.
        assert_eq!(h.quantile_bound(0.0), 0);
        assert_eq!(h.quantile_bound(1.0), 0);
        // One sample in the third bucket (value 2): q = 0.0 must cover at
        // least that sample, not report the empty first bound.
        h.observe(2);
        assert_eq!(h.quantile_bound(0.0), 2);
        assert_eq!(h.quantile_bound(0.5), 2);
        assert_eq!(h.quantile_bound(1.0), 2);
    }

    #[test]
    fn quantile_of_values_exactly_on_bucket_bounds() {
        // Bounds are inclusive: a sample equal to a bound lands in that
        // bucket, and the quantile reports the bound itself.
        let h: Histogram<8> = Histogram::new(DEPTH_BUCKETS);
        for &b in &DEPTH_BUCKETS {
            h.observe(b);
        }
        assert_eq!(h.count(), DEPTH_BUCKETS.len() as u64);
        assert_eq!(h.quantile_bound(0.0), 0);
        // 4 of 8 samples are <= 2 (bounds 0, 1, 2 plus... 0,1,2 are three);
        // the 0.5 quantile needs ceil(4) samples: bounds 0,1,2,4 → 4.
        assert_eq!(h.quantile_bound(0.5), 4);
        assert_eq!(h.quantile_bound(1.0), *DEPTH_BUCKETS.last().unwrap());
        // One more sample beyond every bound overflows: max quantile
        // becomes u64::MAX.
        h.observe(DEPTH_BUCKETS.last().unwrap() + 1);
        assert_eq!(h.quantile_bound(1.0), u64::MAX);
    }

    #[test]
    fn log2_preset_is_doubling_from_one() {
        assert_eq!(
            BATCH_SIZE_BUCKETS,
            [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048]
        );
        let small: [u64; 4] = log2_buckets();
        assert_eq!(small, [1, 2, 4, 8]);
    }

    #[test]
    fn log2_preset_quantile_round_trips_at_bucket_edges() {
        let h: Histogram<12> = Histogram::new(BATCH_SIZE_BUCKETS);
        // Empty: every quantile (including the extremes) is 0.
        assert_eq!(h.quantile_bound(0.0), 0);
        assert_eq!(h.quantile_bound(0.5), 0);
        assert_eq!(h.quantile_bound(1.0), 0);
        // Single sample exactly on a bucket edge: every quantile reports
        // that edge back.
        h.observe(16);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile_bound(q), 16);
        }
        // One sample on every edge: q=0 is the smallest edge, q=1 the
        // largest, q=0.5 the median edge.
        let h: Histogram<12> = Histogram::new(BATCH_SIZE_BUCKETS);
        for &b in &BATCH_SIZE_BUCKETS {
            h.observe(b);
        }
        assert_eq!(h.quantile_bound(0.0), 1);
        assert_eq!(h.quantile_bound(0.5), 32);
        assert_eq!(h.quantile_bound(1.0), 2048);
        // Beyond the last edge: overflow reports u64::MAX.
        h.observe(2049);
        assert_eq!(h.quantile_bound(1.0), u64::MAX);
    }

    #[test]
    fn render_exposes_batch_size_histogram_and_trace_drops() {
        let m = Metrics::new();
        m.batch_size.observe(4);
        let text = m.render();
        assert!(text.contains("mib_serve_batch_size_bucket{le=\"4\"} 1"));
        assert!(text.contains("mib_serve_batch_size_count 1"));
        let line = text
            .lines()
            .find(|l| l.starts_with("mib_trace_dropped_records_total"))
            .expect("render must expose the trace drop counter");
        let value: u64 = line
            .split_whitespace()
            .nth(1)
            .expect("counter line has a value")
            .parse()
            .expect("counter value is numeric");
        assert_eq!(value, mib_trace::total_dropped());
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h: Histogram<10> = Histogram::new(LATENCY_BUCKETS_US);
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        h.observe(17);
        assert_eq!(h.sum(), u64::MAX, "sum must saturate, not wrap");
        assert_eq!(h.count(), 3);
        // The mean of a saturated sum is still a sane (huge) number.
        assert!(h.mean() > 0.0);
        assert!(h.mean().is_finite());
    }

    #[test]
    fn render_includes_latency_breakdown() {
        let m = Metrics::new();
        for v in [10u64, 20, 30] {
            m.queue_wait.observe(v);
            m.service.observe(v * 10);
            m.e2e.observe(v * 11);
        }
        let text = m.render();
        assert!(text.contains("mib_serve_queue_wait_micros_mean 20.000"));
        assert!(text.contains("mib_serve_queue_wait_micros_p50 "));
        assert!(text.contains("mib_serve_service_micros_p99 "));
        assert!(text.contains("mib_serve_e2e_micros_mean "));
    }
}
