//! Request/response types of the serving runtime, and the [`Ticket`]
//! future-like handle a submission returns.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mib_qp::{QpError, SolveResult};

/// A parametric solve request against a registered tenant's template
/// problem. `None` fields keep the template's values (restored explicitly
/// per request — a request never inherits whatever the worker's pooled
/// solver saw last).
#[derive(Debug, Clone, Default)]
pub struct Request {
    /// Replacement linear cost, or `None` for the template's `q`.
    pub q: Option<Vec<f64>>,
    /// Replacement bounds `(l, u)`, or `None` for the template's.
    pub bounds: Option<(Vec<f64>, Vec<f64>)>,
    /// Relative deadline, measured from submission. The solver observes
    /// it at iteration-check boundaries ([`Status::TimedOut`]); a request
    /// still queued when it expires is answered with
    /// [`Outcome::Expired`] without solving.
    ///
    /// [`Status::TimedOut`]: mib_qp::Status::TimedOut
    pub deadline: Option<Duration>,
    /// Optional warm-start point `(x, y)` — typically the previous
    /// solution of the same tenant (see
    /// [`Solver::warm_start_from`](mib_qp::Solver::warm_start_from)).
    /// Warm-started requests trade the bitwise cold-start reproducibility
    /// guarantee for fewer iterations.
    pub warm_start: Option<(Vec<f64>, Vec<f64>)>,
    /// 128-bit trace id correlating this request's server-side spans
    /// (queue wait, solve phases, kernels) with the caller's view of it.
    /// `0` means untraced; over the wire the id arrives in the v2
    /// `Submit` frame's trace section. When the observability plane is
    /// enabled, untraced anomalous requests get a server-generated id so
    /// they are still addressable in the flight recorder.
    pub trace_id: u128,
}

impl Request {
    /// A request replacing only the linear cost.
    pub fn with_q(q: Vec<f64>) -> Self {
        Request {
            q: Some(q),
            ..Request::default()
        }
    }

    /// A request replacing only the bounds.
    pub fn with_bounds(l: Vec<f64>, u: Vec<f64>) -> Self {
        Request {
            bounds: Some((l, u)),
            ..Request::default()
        }
    }

    /// Sets a relative deadline.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a warm-start point.
    pub fn warm_started(mut self, x: Vec<f64>, y: Vec<f64>) -> Self {
        self.warm_start = Some((x, y));
        self
    }

    /// Stamps the request with a trace id (see [`Request::trace_id`]).
    pub fn traced(mut self, trace_id: u128) -> Self {
        self.trace_id = trace_id;
        self
    }
}

/// Terminal outcome of an accepted request.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The solve ran; the embedded [`SolveResult::status`] distinguishes
    /// solved / max-iterations / infeasible / timed-out / cancelled.
    Finished(SolveResult),
    /// The deadline expired while the request was still queued; the solve
    /// never started.
    Expired,
    /// The request was cancelled while still queued; the solve never
    /// started.
    Cancelled,
    /// The parametric data was rejected (wrong length, non-finite
    /// entries, `l > u`, ...).
    Failed(QpError),
}

impl Outcome {
    /// The solve result, if the solve ran.
    pub fn result(&self) -> Option<&SolveResult> {
        match self {
            Outcome::Finished(r) => Some(r),
            _ => None,
        }
    }

    /// `true` when the solve ran and converged.
    pub fn is_solved(&self) -> bool {
        self.result().is_some_and(|r| r.status.is_solved())
    }
}

/// Terminal response delivered through a [`Ticket`].
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// What happened.
    pub outcome: Outcome,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Time the worker spent serving it (updates + solve).
    pub service_time: Duration,
    /// Size of the micro-batch this request was drained in.
    pub batch_size: usize,
}

/// Why a submission was rejected synchronously (backpressure contract:
/// rejection happens at the submission boundary, never silently later).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The shard's bounded queue is full; retry later or shed load.
    ///
    /// Carries the observed depth *and* the configured capacity so the
    /// caller (in-process or the `mib-net` shed frame) can compute a
    /// retry hint instead of guessing from a bare rejection.
    QueueFull {
        /// Queue depth observed at rejection.
        depth: usize,
        /// Configured capacity of the rejecting queue.
        capacity: usize,
    },
    /// The server is draining; no new work is accepted.
    ShuttingDown,
    /// The tenant id was never registered (or the server restarted).
    UnknownTenant,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { depth, capacity } => {
                write!(f, "shard queue full (depth {depth} of {capacity})")
            }
            SubmitError::ShuttingDown => f.write_str("server is shutting down"),
            SubmitError::UnknownTenant => f.write_str("unknown tenant id"),
        }
    }
}

impl Error for SubmitError {}

/// Errors registering a tenant.
#[derive(Debug, Clone, PartialEq)]
pub enum RegisterError {
    /// Solver setup rejected the problem or settings.
    Setup(QpError),
    /// The server is draining; no new tenants are accepted.
    ShuttingDown,
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterError::Setup(e) => write!(f, "tenant setup failed: {e}"),
            RegisterError::ShuttingDown => f.write_str("server is shutting down"),
        }
    }
}

impl Error for RegisterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RegisterError::Setup(e) => Some(e),
            RegisterError::ShuttingDown => None,
        }
    }
}

impl From<QpError> for RegisterError {
    fn from(e: QpError) -> Self {
        RegisterError::Setup(e)
    }
}

/// Completion callback registered through [`Ticket::on_ready`].
type ReadyCallback = Box<dyn FnOnce(Response) + Send + 'static>;

/// Slot state behind the ticket mutex: at most one of `response` /
/// `callback` is ever populated (a delivered response consumes the
/// callback; a registered callback consumes the response on arrival).
#[derive(Default)]
struct TicketState {
    response: Option<Response>,
    callback: Option<ReadyCallback>,
    fulfilled: bool,
}

impl fmt::Debug for TicketState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TicketState")
            .field("response", &self.response)
            .field("callback", &self.callback.as_ref().map(|_| "..."))
            .field("fulfilled", &self.fulfilled)
            .finish()
    }
}

/// Shared state behind a [`Ticket`]: the response slot, its condvar and
/// the cancellation flag the ADMM loop polls.
#[derive(Debug)]
pub(crate) struct TicketShared {
    slot: Mutex<TicketState>,
    ready: Condvar,
    cancel: Arc<AtomicBool>,
}

impl TicketShared {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(TicketShared {
            slot: Mutex::new(TicketState::default()),
            ready: Condvar::new(),
            cancel: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The cancellation flag handed to the solver.
    pub(crate) fn cancel_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// Whether cancellation was requested.
    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Delivers the terminal response: either straight into a registered
    /// [`Ticket::on_ready`] callback (run on this thread, outside the
    /// lock) or into the slot, waking every waiter.
    pub(crate) fn fulfill(&self, response: Response) {
        let mut slot = self.slot.lock().expect("ticket lock poisoned");
        debug_assert!(!slot.fulfilled, "a ticket must be fulfilled exactly once");
        slot.fulfilled = true;
        if let Some(callback) = slot.callback.take() {
            drop(slot);
            callback(response);
            return;
        }
        slot.response = Some(response);
        drop(slot);
        self.ready.notify_all();
    }
}

/// Handle to an accepted request: wait for the terminal [`Response`],
/// poll it, or request cancellation.
///
/// Every accepted request is eventually fulfilled — workers drain their
/// queues on shutdown and answer each pending request — so [`Ticket::wait`]
/// cannot hang on a live server.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) shared: Arc<TicketShared>,
}

impl Ticket {
    /// Blocks until the terminal response arrives.
    pub fn wait(self) -> Response {
        let mut slot = self.shared.slot.lock().expect("ticket lock poisoned");
        loop {
            if let Some(response) = slot.response.take() {
                return response;
            }
            slot = self.shared.ready.wait(slot).expect("ticket lock poisoned");
        }
    }

    /// Waits up to `timeout`; `Err(self)` gives the ticket back on
    /// timeout so the caller can keep waiting or cancel.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Response, Ticket> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.shared.slot.lock().expect("ticket lock poisoned");
        loop {
            if let Some(response) = slot.response.take() {
                return Ok(response);
            }
            let now = Instant::now();
            if now >= deadline {
                drop(slot);
                return Err(self);
            }
            let (guard, _) = self
                .shared
                .ready
                .wait_timeout(slot, deadline - now)
                .expect("ticket lock poisoned");
            slot = guard;
        }
    }

    /// Non-blocking: `true` once the response is ready.
    pub fn is_done(&self) -> bool {
        self.shared
            .slot
            .lock()
            .expect("ticket lock poisoned")
            .response
            .is_some()
    }

    /// Registers a completion callback instead of blocking: `callback`
    /// runs exactly once with the terminal [`Response`] — immediately
    /// (on this thread) if the response already arrived, otherwise on
    /// the worker thread that fulfills the ticket. The callback must be
    /// cheap and non-blocking (a channel send, a counter bump): it runs
    /// on the serving hot path. This is the event-driven alternative to
    /// [`wait`](Self::wait) that `mib-net` uses to demultiplex thousands
    /// of in-flight requests onto one writer per connection without a
    /// thread per ticket.
    pub fn on_ready(self, callback: impl FnOnce(Response) + Send + 'static) {
        let mut slot = self.shared.slot.lock().expect("ticket lock poisoned");
        if let Some(response) = slot.response.take() {
            drop(slot);
            callback(response);
            return;
        }
        debug_assert!(
            slot.callback.is_none(),
            "a ticket accepts at most one completion callback"
        );
        slot.callback = Some(Box::new(callback));
    }

    /// A detached cancellation handle: lets the caller request
    /// cancellation after the ticket itself has been consumed by
    /// [`wait`](Self::wait) or [`on_ready`](Self::on_ready).
    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle {
            cancel: self.shared.cancel_flag(),
        }
    }

    /// Requests cancellation. Queued requests are answered with
    /// [`Outcome::Cancelled`]; an in-flight solve observes the flag at
    /// its next check boundary and finishes with
    /// [`Status::Cancelled`](mib_qp::Status::Cancelled). Cancellation is
    /// cooperative — the response still arrives through the ticket.
    pub fn cancel(&self) {
        self.shared.cancel.store(true, Ordering::Relaxed);
    }
}

/// Cancellation handle detached from its [`Ticket`] (see
/// [`Ticket::cancel_handle`]): carries only the shared cancel flag, so
/// it stays usable after the ticket was consumed.
#[derive(Debug, Clone)]
pub struct CancelHandle {
    cancel: Arc<AtomicBool>,
}

impl CancelHandle {
    /// Requests cooperative cancellation (same semantics as
    /// [`Ticket::cancel`]).
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_response() -> Response {
        Response {
            outcome: Outcome::Expired,
            queue_wait: Duration::from_micros(5),
            service_time: Duration::ZERO,
            batch_size: 1,
        }
    }

    #[test]
    fn ticket_roundtrip() {
        let shared = TicketShared::new();
        let ticket = Ticket {
            shared: Arc::clone(&shared),
        };
        assert!(!ticket.is_done());
        shared.fulfill(dummy_response());
        assert!(ticket.is_done());
        let r = ticket.wait();
        assert_eq!(r.outcome, Outcome::Expired);
    }

    #[test]
    fn ticket_wait_timeout_returns_ticket() {
        let shared = TicketShared::new();
        let ticket = Ticket {
            shared: Arc::clone(&shared),
        };
        let Err(ticket) = ticket.wait_timeout(Duration::from_millis(10)) else {
            panic!("nothing was fulfilled yet")
        };
        shared.fulfill(dummy_response());
        assert!(ticket.wait_timeout(Duration::from_secs(5)).is_ok());
    }

    #[test]
    fn ticket_wait_across_threads() {
        let shared = TicketShared::new();
        let ticket = Ticket {
            shared: Arc::clone(&shared),
        };
        let waiter = std::thread::spawn(move || ticket.wait());
        std::thread::sleep(Duration::from_millis(5));
        shared.fulfill(dummy_response());
        let r = waiter.join().expect("waiter must not panic");
        assert_eq!(r.batch_size, 1);
    }

    #[test]
    fn cancellation_sets_the_shared_flag() {
        let shared = TicketShared::new();
        let ticket = Ticket {
            shared: Arc::clone(&shared),
        };
        assert!(!shared.is_cancelled());
        ticket.cancel();
        assert!(shared.is_cancelled());
        assert!(shared.cancel_flag().load(Ordering::Relaxed));
    }

    #[test]
    fn on_ready_runs_after_fulfill() {
        let shared = TicketShared::new();
        let ticket = Ticket {
            shared: Arc::clone(&shared),
        };
        let (tx, rx) = std::sync::mpsc::channel();
        ticket.on_ready(move |r| tx.send(r).expect("receiver alive"));
        shared.fulfill(dummy_response());
        let r = rx.recv().expect("callback must fire on fulfill");
        assert_eq!(r.outcome, Outcome::Expired);
    }

    #[test]
    fn on_ready_runs_immediately_when_already_fulfilled() {
        let shared = TicketShared::new();
        let ticket = Ticket {
            shared: Arc::clone(&shared),
        };
        shared.fulfill(dummy_response());
        let (tx, rx) = std::sync::mpsc::channel();
        ticket.on_ready(move |r| tx.send(r).expect("receiver alive"));
        assert_eq!(rx.try_recv().expect("ran inline").batch_size, 1);
    }

    #[test]
    fn cancel_handle_outlives_the_ticket() {
        let shared = TicketShared::new();
        let ticket = Ticket {
            shared: Arc::clone(&shared),
        };
        let handle = ticket.cancel_handle();
        ticket.on_ready(|_| {});
        assert!(!shared.is_cancelled());
        handle.cancel();
        assert!(shared.is_cancelled());
    }

    #[test]
    fn outcome_predicates() {
        assert!(!Outcome::Expired.is_solved());
        assert!(Outcome::Expired.result().is_none());
        let e = SubmitError::QueueFull {
            depth: 8,
            capacity: 8,
        };
        assert!(e.to_string().contains('8'));
        let e = RegisterError::Setup(QpError::InvalidSetting("x".into()));
        assert!(e.source().is_some());
    }
}
