//! Pattern shards: per-structure worker pools with bounded queues and a
//! micro-batching drain loop.
//!
//! A shard owns every resource keyed by one [`PatternKey`]: a bounded
//! submission queue (the backpressure boundary), a small pool of worker
//! threads, and — inside each worker — warm per-tenant [`Solver`] clones
//! that are re-parameterized and [`reset`](Solver::reset) per request, so
//! steady-state serving performs no setup work and no solver allocation.
//!
//! # Micro-batching
//!
//! A worker that finds the queue non-empty takes one request, then keeps
//! the drain open for up to the configured window (or until `max_batch`
//! requests are in hand) before solving the whole batch back-to-back —
//! the `BatchSolver`-style multi-solve, amortizing wakeups and keeping
//! one warm solver hot across consecutive same-tenant requests.
//!
//! # Determinism
//!
//! Each request is fully re-parameterized from its tenant's template and
//! solved from a reset state, so the answer is a pure function of the
//! request — independent of which worker serves it, what that worker
//! served before, and how requests were batched. The soak test and
//! `serve_bench` pin this down bitwise against direct solves.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mib_qp::{Algorithm, QpError, SolveResult, Solver, Status};

use crate::metrics::Metrics;
use crate::obs::ObsPlane;
use crate::pattern::PatternKey;
use crate::request::{Outcome, Request, Response, SubmitError, TicketShared};
use crate::router::BackendRouter;

/// A registered tenant: one template problem prepared for serving.
///
/// The template [`Solver`] carries the paid-for setup (equilibration,
/// ordering, symbolic + numeric factorization); workers clone it once
/// per tenant and keep the clone warm.
#[derive(Debug)]
pub(crate) struct Tenant {
    /// Server-unique id.
    pub id: u64,
    /// Structural routing key.
    pub pattern: PatternKey,
    /// Solver algorithm of the template (the backend label of every
    /// solve served for this tenant).
    pub algorithm: Algorithm,
    /// The registered base problem (source of `None`-field defaults).
    pub problem: mib_qp::Problem,
    /// Prepared solver prototype, cloned by workers.
    pub template: Solver,
}

/// One accepted request waiting in (or drained from) a shard queue.
#[derive(Debug)]
pub(crate) struct Pending {
    pub tenant: Arc<Tenant>,
    pub request: Request,
    pub ticket: Arc<TicketShared>,
    pub submitted_at: Instant,
    /// Absolute deadline derived from the request's relative one.
    pub deadline: Option<Instant>,
    /// Shadow-audit companion: after the primary solve, re-solve the
    /// same request on this sibling tenant (a different backend of the
    /// same portfolio) and cross-check the answers.
    pub shadow: Option<Arc<Tenant>>,
}

/// Per-shard knobs, copied from the server configuration.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardConfig {
    pub queue_capacity: usize,
    pub batch_window: Duration,
    pub max_batch: usize,
    pub workers: usize,
    pub shadow_rel_tol: f64,
}

/// Queue state guarded by the shard mutex.
#[derive(Debug)]
struct QueueState {
    queue: VecDeque<Pending>,
    /// Set by [`Shard::stop`]: drain what is queued, then exit.
    stopping: bool,
}

/// A pattern shard: bounded queue + condvar + worker pool.
#[derive(Debug)]
pub(crate) struct Shard {
    key: PatternKey,
    cfg: ShardConfig,
    state: Mutex<QueueState>,
    available: Condvar,
    metrics: Arc<Metrics>,
    router: Arc<BackendRouter>,
    obs: Arc<ObsPlane>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shard {
    /// Creates the shard and starts its worker threads.
    pub(crate) fn spawn(
        key: PatternKey,
        cfg: ShardConfig,
        metrics: Arc<Metrics>,
        router: Arc<BackendRouter>,
        obs: Arc<ObsPlane>,
    ) -> Arc<Shard> {
        let shard = Arc::new(Shard {
            key,
            cfg,
            state: Mutex::new(QueueState {
                queue: VecDeque::with_capacity(cfg.queue_capacity),
                stopping: false,
            }),
            available: Condvar::new(),
            metrics,
            router,
            obs,
            workers: Mutex::new(Vec::with_capacity(cfg.workers)),
        });
        let mut workers = shard.workers.lock().expect("shard worker lock");
        for w in 0..cfg.workers {
            let me = Arc::clone(&shard);
            let handle = std::thread::Builder::new()
                .name(format!("mib-serve-{}-{w}", me.key))
                .spawn(move || worker_loop(&me))
                .expect("spawning a shard worker thread");
            workers.push(handle);
        }
        drop(workers);
        shard
    }

    /// Admission control: accepts the request into the bounded queue or
    /// rejects it synchronously, handing the [`Pending`] back so the
    /// caller can retry (or drop it) without cloning the request.
    // The Err variant intentionally carries the Pending back by value:
    // boxing it would put an allocation on the submission path.
    #[allow(clippy::result_large_err)]
    pub(crate) fn enqueue(&self, pending: Pending) -> Result<(), (SubmitError, Pending)> {
        let mut st = self.state.lock().expect("shard queue lock");
        if st.stopping {
            return Err((SubmitError::ShuttingDown, pending));
        }
        if st.queue.len() >= self.cfg.queue_capacity {
            let depth = st.queue.len();
            drop(st);
            self.metrics.inc(&self.metrics.counters.rejected_queue_full);
            // A queue-full rejection is a shed: feed the readiness
            // window and (for trace-stamped requests) the flight ring.
            if self.obs.is_active() {
                self.obs
                    .record_shed(pending.request.trace_id, "queue_full", Instant::now());
            }
            return Err((
                SubmitError::QueueFull {
                    depth,
                    capacity: self.cfg.queue_capacity,
                },
                pending,
            ));
        }
        st.queue.push_back(pending);
        let depth = st.queue.len() as u64;
        drop(st);
        self.metrics.inc(&self.metrics.counters.submitted);
        self.metrics.queue_depth.observe(depth);
        if self.obs.is_active() {
            self.obs.record_admitted(Instant::now());
        }
        // The submit instant, with the observed depth: a trace viewer pairs
        // this with the worker-side `request` span to see the queue wait.
        mib_trace::mark("submit", mib_trace::Category::Serve, depth as f64);
        self.available.notify_one();
        Ok(())
    }

    /// Tells the workers to drain the queue and exit; wakes all of them.
    pub(crate) fn stop(&self) {
        self.state.lock().expect("shard queue lock").stopping = true;
        self.available.notify_all();
    }

    /// Joins every worker thread (the queue is fully drained first).
    pub(crate) fn join(&self) {
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("shard worker lock")
            .drain(..)
            .collect();
        for handle in handles {
            // A worker panic would already have poisoned nothing (workers
            // share no locks with us beyond the queue); surface it.
            handle.join().expect("shard worker panicked");
        }
    }

    /// Blocks until work is available, then drains a micro-batch: one
    /// request immediately, then up to `max_batch` within the batching
    /// window. Returns `None` when the shard is stopping and drained.
    fn next_batch(&self) -> Option<Vec<Pending>> {
        let mut st = self.state.lock().expect("shard queue lock");
        loop {
            if !st.queue.is_empty() {
                break;
            }
            if st.stopping {
                return None;
            }
            st = self.available.wait(st).expect("shard queue lock");
        }
        let mut batch = Vec::with_capacity(self.cfg.max_batch.min(st.queue.len()));
        while batch.len() < self.cfg.max_batch {
            match st.queue.pop_front() {
                Some(p) => batch.push(p),
                None => break,
            }
        }
        // Keep the drain open for the rest of the window: later arrivals
        // coalesce into this batch instead of waking another worker.
        if batch.len() < self.cfg.max_batch && !self.cfg.batch_window.is_zero() {
            let window_end = Instant::now() + self.cfg.batch_window;
            'window: while batch.len() < self.cfg.max_batch {
                while st.queue.is_empty() {
                    if st.stopping {
                        break 'window;
                    }
                    let now = Instant::now();
                    if now >= window_end {
                        break 'window;
                    }
                    let (guard, _) = self
                        .available
                        .wait_timeout(st, window_end - now)
                        .expect("shard queue lock");
                    st = guard;
                }
                while batch.len() < self.cfg.max_batch {
                    match st.queue.pop_front() {
                        Some(p) => batch.push(p),
                        None => break,
                    }
                }
            }
        }
        drop(st);
        Some(batch)
    }
}

/// Worker thread body: drain micro-batches until the shard stops, keeping
/// a warm solver per tenant.
fn worker_loop(shard: &Arc<Shard>) {
    let mut warm: HashMap<u64, Solver> = HashMap::new();
    while let Some(batch) = shard.next_batch() {
        let size = batch.len();
        shard.metrics.inc(&shard.metrics.counters.batches);
        shard
            .metrics
            .counters
            .batched_requests
            .fetch_add(size as u64, std::sync::atomic::Ordering::Relaxed);
        shard.metrics.batch_size.observe(size as u64);
        {
            let tracing = mib_trace::enabled();
            let _batch_span = mib_trace::span_if(tracing, "batch", mib_trace::Category::Serve);
            mib_trace::record_if(
                tracing,
                mib_trace::Event::Mark {
                    name: "batch_size",
                    cat: mib_trace::Category::Serve,
                    value: size as f64,
                },
            );
            for pending in batch {
                serve_one(shard, &mut warm, pending, size);
            }
        }
        // Tail sampling consumed each request's records inside
        // serve_one; discard the ambient leftovers (the batch envelope
        // span, marks between requests) so this worker's buffer never
        // creeps toward the drop bound.
        if shard.obs.is_active() {
            mib_trace::discard_local();
        }
    }
}

/// Serves one drained request end-to-end and fulfills its ticket.
fn serve_one(shard: &Shard, warm: &mut HashMap<u64, Solver>, pending: Pending, batch_size: usize) {
    let metrics = &*shard.metrics;
    let Pending {
        tenant,
        request,
        ticket,
        submitted_at,
        deadline,
        shadow,
    } = pending;
    let picked_up = Instant::now();
    let queue_wait = picked_up.saturating_duration_since(submitted_at);
    let c = &metrics.counters;
    // Tail sampling: mark the start of this request's records so the
    // flight recorder can lift exactly them if the request turns out to
    // be worth a post-mortem. One cheap thread-local length read.
    let obs_active = shard.obs.is_active();
    let cursor = obs_active.then(mib_trace::cursor);
    // Request lifecycle span: nests under the worker's `batch` span and
    // encloses the solver's own `solve` span. The queue wait already
    // elapsed before this span opened, so it is attached as a mark (and
    // reconstructed as a synthetic span in flight-recorder exports).
    let tracing = mib_trace::enabled();
    let request_span = mib_trace::span_if(tracing, "request", mib_trace::Category::Serve);
    mib_trace::record_if(
        tracing,
        mib_trace::Event::Mark {
            name: "queue_wait_us",
            cat: mib_trace::Category::Serve,
            value: queue_wait.as_secs_f64() * 1e6,
        },
    );

    // Short-circuits: never start a solve that is already moot.
    let (outcome, service_time) = if ticket.is_cancelled() {
        metrics.inc(&c.cancelled_before_start);
        (Outcome::Cancelled, Duration::ZERO)
    } else if deadline.is_some_and(|d| picked_up >= d) {
        metrics.inc(&c.expired);
        (Outcome::Expired, Duration::ZERO)
    } else {
        let solver = match warm.entry(tenant.id) {
            Entry::Occupied(e) => {
                metrics.inc(&c.warm_hits);
                e.into_mut()
            }
            Entry::Vacant(v) => {
                metrics.inc(&c.warm_builds);
                v.insert(tenant.template.clone())
            }
        };

        let solve_span = mib_trace::span_if(tracing, "solve_request", mib_trace::Category::Serve);
        let outcome = match solve_request(solver, &tenant, &request, deadline, Some(&ticket)) {
            Ok(result) => {
                match result.status {
                    Status::Solved => metrics.inc(&c.solved),
                    Status::MaxIterations => metrics.inc(&c.max_iterations),
                    Status::PrimalInfeasible | Status::DualInfeasible => metrics.inc(&c.infeasible),
                    Status::TimedOut => metrics.inc(&c.timed_out),
                    Status::Cancelled => metrics.inc(&c.cancelled),
                }
                record_solve_telemetry(shard, &tenant, &result, false);
                Outcome::Finished(result)
            }
            Err(e) => {
                metrics.inc(&c.failed);
                Outcome::Failed(e)
            }
        };
        drop(solve_span);
        if let (Some(sibling), Outcome::Finished(primary)) = (&shadow, &outcome) {
            shadow_audit(shard, warm, sibling, &request, primary);
        }
        (outcome, picked_up.elapsed())
    };
    // Close the request span before sampling so its End record is part
    // of the captured tree.
    drop(request_span);
    if let Some(cursor) = cursor {
        let trace_id = if request.trace_id != 0 {
            request.trace_id
        } else {
            shard.obs.next_trace_id()
        };
        let service_us = u64::try_from(service_time.as_micros()).unwrap_or(u64::MAX);
        shard.obs.capture(
            cursor,
            trace_id,
            &outcome,
            service_us,
            submitted_at,
            picked_up,
        );
    }
    finish(
        shard,
        &tenant,
        &ticket,
        outcome,
        queue_wait,
        service_time,
        batch_size,
        submitted_at,
    );
}

/// Feeds one terminal solve into the backend-labelled counters and, for
/// runs that actually iterated to an answer (converged or ran out of
/// iterations — not interrupted), into the router's per-structure EWMA.
/// Audit solves update the EWMA only — they never count toward the
/// router's cold-exploration quota (see [`BackendRouter::record_audit`]).
///
/// [`BackendRouter::record_audit`]: crate::router::BackendRouter::record_audit
fn record_solve_telemetry(shard: &Shard, tenant: &Tenant, result: &SolveResult, audit: bool) {
    let micros = u64::try_from(result.solve_time.as_micros()).unwrap_or(u64::MAX);
    shard.metrics.backend.record(
        result.algorithm,
        result.status.is_solved(),
        result.iterations as u64,
        micros,
    );
    if matches!(result.status, Status::Solved | Status::MaxIterations) {
        let structure = tenant.pattern.structure_digest();
        let micros = micros as f64;
        if audit {
            shard
                .router
                .record_audit(structure, result.algorithm, micros);
        } else {
            shard.router.record(structure, result.algorithm, micros);
        }
    }
}

/// Re-solves an already-answered request on the shadow tenant (a sibling
/// backend of the same portfolio) and cross-checks the two answers.
/// Shadow solves run without the request's deadline or cancellation flag
/// — the audit compares algorithms, not interruptions — and feed the
/// backend counters and the router's EWMA (but not its exploration
/// quota, which only routed primaries satisfy). A verdict needs both
/// solves terminal-by-convergence: agreement when both converge to
/// objectives within the relative tolerance (or both prove
/// infeasibility), mismatch when they contradict, inconclusive
/// otherwise.
fn shadow_audit(
    shard: &Shard,
    warm: &mut HashMap<u64, Solver>,
    tenant: &Arc<Tenant>,
    request: &Request,
    primary: &SolveResult,
) {
    let metrics = &*shard.metrics;
    let c = &metrics.counters;
    metrics.inc(&c.shadow_audits);
    let tracing = mib_trace::enabled();
    let _shadow_span = mib_trace::span_if(tracing, "shadow_audit", mib_trace::Category::Serve);
    let solver = warm
        .entry(tenant.id)
        .or_insert_with(|| tenant.template.clone());
    let Ok(shadow) = solve_request(solver, tenant, request, None, None) else {
        metrics.inc(&c.shadow_inconclusive);
        return;
    };
    record_solve_telemetry(shard, tenant, &shadow, true);
    let infeasible = |s: Status| matches!(s, Status::PrimalInfeasible | Status::DualInfeasible);
    match (primary.status, shadow.status) {
        (Status::Solved, Status::Solved) => {
            let scale = primary.obj_val.abs().max(shadow.obj_val.abs()).max(1.0);
            if (primary.obj_val - shadow.obj_val).abs() <= shard.cfg.shadow_rel_tol * scale {
                metrics.inc(&c.shadow_agreements);
            } else {
                metrics.inc(&c.shadow_mismatches);
            }
        }
        (a, b) if infeasible(a) && infeasible(b) => metrics.inc(&c.shadow_agreements),
        (Status::Solved, b) if infeasible(b) => metrics.inc(&c.shadow_mismatches),
        (a, Status::Solved) if infeasible(a) => metrics.inc(&c.shadow_mismatches),
        _ => metrics.inc(&c.shadow_inconclusive),
    }
}

/// Re-parameterizes the warm solver from the tenant template plus the
/// request and solves. The sequence (update, reset, optional warm start)
/// makes the answer a pure function of `(template, request)` — bitwise
/// equal to a fresh clone of the template given the same updates.
/// Shadow solves pass `cancel: None` so an audit cannot be aborted by
/// the primary ticket's cancellation.
fn solve_request(
    solver: &mut Solver,
    tenant: &Tenant,
    request: &Request,
    deadline: Option<Instant>,
    cancel: Option<&TicketShared>,
) -> Result<SolveResult, QpError> {
    solver.update_q(request.q.as_deref().unwrap_or(tenant.problem.q()))?;
    match &request.bounds {
        Some((l, u)) => solver.update_bounds(l, u)?,
        None => solver.update_bounds(tenant.problem.l(), tenant.problem.u())?,
    }
    solver.reset();
    if let Some((x, y)) = &request.warm_start {
        if x.len() != tenant.problem.num_vars() || y.len() != tenant.problem.num_constraints() {
            return Err(QpError::InvalidProblem(format!(
                "warm start dimensions ({}, {}) do not match problem ({}, {})",
                x.len(),
                y.len(),
                tenant.problem.num_vars(),
                tenant.problem.num_constraints()
            )));
        }
        solver.warm_start(x, y);
    }
    solver.set_deadline(deadline);
    solver.set_cancel_flag(cancel.map(TicketShared::cancel_flag));
    let result = solver.solve();
    solver.set_cancel_flag(None);
    solver.set_deadline(None);
    Ok(result)
}

/// Records the terminal latency observations and fulfills the ticket.
#[allow(clippy::too_many_arguments)]
fn finish(
    shard: &Shard,
    tenant: &Tenant,
    ticket: &TicketShared,
    outcome: Outcome,
    queue_wait: Duration,
    service_time: Duration,
    batch_size: usize,
    submitted_at: Instant,
) {
    let metrics = &*shard.metrics;
    let e2e = submitted_at.elapsed();
    metrics.queue_wait.observe_duration(queue_wait);
    metrics.service.observe_duration(service_time);
    metrics.e2e.observe_duration(e2e);
    metrics.inc(&metrics.counters.completed);
    if shard.obs.is_active() {
        let us = |d: Duration| u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let e2e_us = us(e2e);
        let verdict = shard.obs.slo_verdict(&outcome, e2e_us);
        shard.obs.record_response(
            tenant.id,
            tenant.algorithm,
            us(queue_wait),
            us(service_time),
            e2e_us,
            verdict,
            Instant::now(),
        );
    }
    ticket.fulfill(Response {
        outcome,
        queue_wait,
        service_time,
        batch_size,
    });
}
