//! Telemetry-driven backend routing for portfolio tenants.
//!
//! A portfolio registers the same problem under several solver variants
//! (ADMM, PDQP, ...). The router keeps, per problem *structure* (the
//! algorithm-agnostic [`structure_digest`]) and per [`Algorithm`], an
//! exponentially weighted moving average of observed solve times fed
//! back from the workers' per-solve telemetry. Routed submissions go to
//! the algorithm that has historically converged fastest on that
//! structure; until every candidate has a minimal sample count the
//! router explores (round-robins onto the least-sampled candidate), so
//! a cold portfolio measures each backend before committing.
//!
//! [`structure_digest`]: crate::PatternKey::structure_digest

use std::collections::HashMap;
use std::sync::Mutex;

use mib_qp::{Algorithm, ALGORITHM_COUNT};

/// EWMA smoothing factor: one observation moves the average 30% of the
/// way to the new sample — responsive to drift, robust to one outlier.
const ALPHA: f64 = 0.3;

/// Observations a candidate needs before the router trusts its EWMA;
/// below this the candidate is explored unconditionally.
const MIN_SAMPLES: u64 = 2;

/// Per-(structure, algorithm) routing state.
#[derive(Debug, Clone, Copy, Default)]
struct Arm {
    /// Routed primary solves only — gates cold exploration.
    samples: u64,
    /// Every observation that updated the EWMA (routed + audits).
    observations: u64,
    ewma_us: f64,
}

/// Routes portfolio submissions to the historically fastest backend for
/// each problem structure. Shared (`Arc`) between the server front door
/// (choice) and the shard workers (feedback); internally a mutex over a
/// small per-structure table — touched once per routed request, never
/// inside a solve.
#[derive(Debug, Default)]
pub struct BackendRouter {
    arms: Mutex<HashMap<u64, [Arm; ALGORITHM_COUNT]>>,
}

impl BackendRouter {
    /// An empty router.
    pub fn new() -> Self {
        BackendRouter::default()
    }

    /// Feeds back one routed solve: `micros` of wall time for
    /// `algorithm` on the structure identified by `structure`. Counts
    /// toward the cold-exploration quota.
    pub fn record(&self, structure: u64, algorithm: Algorithm, micros: f64) {
        self.feed(structure, algorithm, micros, true);
    }

    /// Feeds back one shadow-audit solve. Audits sharpen the EWMA but do
    /// **not** count toward the exploration quota: an audit piggybacks on
    /// a request routed to a *sibling* backend, so letting it satisfy the
    /// quota would let a candidate go straight from cold to
    /// EWMA-compared without ever serving a routed request — and a
    /// candidate whose EWMA never wins would then never be exercised at
    /// all.
    pub fn record_audit(&self, structure: u64, algorithm: Algorithm, micros: f64) {
        self.feed(structure, algorithm, micros, false);
    }

    fn feed(&self, structure: u64, algorithm: Algorithm, micros: f64, routed: bool) {
        let mut arms = self.arms.lock().expect("router lock");
        let arm = &mut arms.entry(structure).or_default()[algorithm.index()];
        if routed {
            arm.samples += 1;
        }
        arm.observations += 1;
        arm.ewma_us = if arm.observations == 1 {
            micros
        } else {
            ALPHA * micros + (1.0 - ALPHA) * arm.ewma_us
        };
    }

    /// Picks the candidate to serve the next request on `structure`.
    ///
    /// Candidates with fewer than [`MIN_SAMPLES`] observations are
    /// explored first (fewest samples wins, ties broken by candidate
    /// order); once all are warmed the lowest EWMA wins (ties again by
    /// candidate order), so the choice is deterministic given the
    /// telemetry history.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn choose(&self, structure: u64, candidates: &[Algorithm]) -> Algorithm {
        assert!(
            !candidates.is_empty(),
            "choose needs at least one candidate"
        );
        let arms = self.arms.lock().expect("router lock");
        let row = arms.get(&structure).copied().unwrap_or_default();
        let cold = candidates
            .iter()
            .filter(|a| row[a.index()].samples < MIN_SAMPLES)
            .min_by_key(|a| row[a.index()].samples);
        if let Some(&a) = cold {
            return a;
        }
        *candidates
            .iter()
            .min_by(|a, b| row[a.index()].ewma_us.total_cmp(&row[b.index()].ewma_us))
            .expect("candidates is non-empty")
    }

    /// Observations recorded for (`structure`, `algorithm`).
    pub fn samples(&self, structure: u64, algorithm: Algorithm) -> u64 {
        self.arms
            .lock()
            .expect("router lock")
            .get(&structure)
            .map_or(0, |row| row[algorithm.index()].samples)
    }

    /// Current EWMA solve time in µs, or `None` before any observation.
    pub fn ewma_micros(&self, structure: u64, algorithm: Algorithm) -> Option<f64> {
        self.arms
            .lock()
            .expect("router lock")
            .get(&structure)
            .and_then(|row| {
                let arm = row[algorithm.index()];
                (arm.observations > 0).then_some(arm.ewma_us)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOTH: [Algorithm; 2] = [Algorithm::Admm, Algorithm::Pdqp];

    #[test]
    fn cold_router_explores_every_candidate_first() {
        let r = BackendRouter::new();
        // No samples at all: candidate order breaks the tie.
        assert_eq!(r.choose(7, &BOTH), Algorithm::Admm);
        r.record(7, Algorithm::Admm, 100.0);
        // ADMM has 1 sample, PDQP 0: PDQP is now the least sampled.
        assert_eq!(r.choose(7, &BOTH), Algorithm::Pdqp);
        r.record(7, Algorithm::Pdqp, 1.0);
        // Both at 1 < MIN_SAMPLES: back to candidate order.
        assert_eq!(r.choose(7, &BOTH), Algorithm::Admm);
    }

    #[test]
    fn warm_router_picks_the_lower_ewma() {
        let r = BackendRouter::new();
        for _ in 0..3 {
            r.record(7, Algorithm::Admm, 50.0);
            r.record(7, Algorithm::Pdqp, 500.0);
        }
        assert_eq!(r.choose(7, &BOTH), Algorithm::Admm);
        // A sustained slowdown flips the choice (EWMA follows drift).
        for _ in 0..20 {
            r.record(7, Algorithm::Admm, 5000.0);
        }
        assert_eq!(r.choose(7, &BOTH), Algorithm::Pdqp);
    }

    #[test]
    fn structures_are_independent() {
        let r = BackendRouter::new();
        for _ in 0..3 {
            r.record(1, Algorithm::Admm, 10.0);
            r.record(1, Algorithm::Pdqp, 90.0);
            r.record(2, Algorithm::Admm, 90.0);
            r.record(2, Algorithm::Pdqp, 10.0);
        }
        assert_eq!(r.choose(1, &BOTH), Algorithm::Admm);
        assert_eq!(r.choose(2, &BOTH), Algorithm::Pdqp);
        assert_eq!(r.samples(1, Algorithm::Admm), 3);
        assert_eq!(r.samples(3, Algorithm::Admm), 0);
        assert!(r.ewma_micros(1, Algorithm::Admm).is_some());
        assert!(r.ewma_micros(3, Algorithm::Admm).is_none());
    }

    #[test]
    fn audits_do_not_satisfy_the_exploration_quota() {
        let r = BackendRouter::new();
        // ADMM is warmed by routed solves; PDQP only ever by audits,
        // with a (slower) EWMA that would lose the warm comparison.
        r.record(7, Algorithm::Admm, 10.0);
        r.record(7, Algorithm::Admm, 10.0);
        for _ in 0..5 {
            r.record_audit(7, Algorithm::Pdqp, 1000.0);
        }
        assert_eq!(r.samples(7, Algorithm::Pdqp), 0);
        assert!(r.ewma_micros(7, Algorithm::Pdqp).is_some());
        // PDQP must still be explored with real routed traffic.
        assert_eq!(r.choose(7, &BOTH), Algorithm::Pdqp);
        r.record(7, Algorithm::Pdqp, 1000.0);
        assert_eq!(r.choose(7, &BOTH), Algorithm::Pdqp);
        // Quota met: now (and only now) the EWMA decides.
        r.record(7, Algorithm::Pdqp, 1000.0);
        assert_eq!(r.choose(7, &BOTH), Algorithm::Admm);
    }

    #[test]
    fn single_candidate_portfolios_always_route_to_it() {
        let r = BackendRouter::new();
        assert_eq!(r.choose(9, &[Algorithm::Pdqp]), Algorithm::Pdqp);
        for _ in 0..5 {
            r.record(9, Algorithm::Pdqp, 10.0);
        }
        assert_eq!(r.choose(9, &[Algorithm::Pdqp]), Algorithm::Pdqp);
    }
}
