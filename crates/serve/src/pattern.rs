//! Structural identity of a QP: the shard routing key.
//!
//! Two problems land on the same shard exactly when their `P`/`A`
//! sparsity patterns, dimensions, KKT backend and solver algorithm
//! agree. Values (`P`/`A` entries, `q`, `l`, `u`) deliberately do
//! **not** participate: they are per-tenant/per-request data, and the
//! shard exists to share the structure-keyed machinery (worker threads,
//! micro-batch queues, warm solver pools) across everything with the
//! same shape.

use std::fmt;
use std::hash::{Hash, Hasher};

use mib_qp::{Algorithm, KktBackend, Problem};
use mib_sparse::CscMatrix;

/// Structural hash key of a QP family: dimensions, `P`/`A` sparsity
/// patterns, the KKT backend and the solver algorithm.
///
/// The key stores the full structural stream (not just a digest), so two
/// distinct patterns can never collide; the 64-bit [`digest`] is a cheap
/// fingerprint for display and map hashing only. The solver identity
/// (backend, algorithm) sits at the end of the stream, so the
/// pure-structure prefix yields a second fingerprint,
/// [`structure_digest`], shared by every solver variant of the same
/// shape — the portfolio router compares backends under that key.
///
/// [`digest`]: PatternKey::digest
/// [`structure_digest`]: PatternKey::structure_digest
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternKey {
    stream: Vec<u64>,
    digest: u64,
    structure_digest: u64,
}

/// Trailing stream words that identify the solver rather than the
/// problem structure: the KKT backend and the algorithm.
const SOLVER_IDENTITY_WORDS: usize = 2;

impl PatternKey {
    /// The structural key of `problem` solved with `backend` by
    /// `algorithm`.
    pub fn of(problem: &Problem, backend: KktBackend, algorithm: Algorithm) -> Self {
        let mut stream = Vec::new();
        stream.push(problem.num_vars() as u64);
        stream.push(problem.num_constraints() as u64);
        push_structure(&mut stream, problem.p());
        push_structure(&mut stream, problem.a());
        // Solver identity goes last so the structure-only prefix is a
        // stream prefix.
        stream.push(backend as u64);
        stream.push(algorithm.index() as u64);
        let digest = fnv1a(&stream);
        let structure_digest = fnv1a(&stream[..stream.len() - SOLVER_IDENTITY_WORDS]);
        PatternKey {
            stream,
            digest,
            structure_digest,
        }
    }

    /// A 64-bit fingerprint of the pattern (FNV-1a over the structural
    /// stream). Collision-tolerant uses only: display, hashing.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Fingerprint of the problem structure alone (dimensions and
    /// `P`/`A` sparsity, no backend/algorithm): equal across every
    /// solver variant of the same shape. The backend router keys its
    /// telemetry on this.
    pub fn structure_digest(&self) -> u64 {
        self.structure_digest
    }
}

impl Hash for PatternKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Equal streams imply equal digests, so hashing the digest alone
        // is consistent with `Eq` and avoids rehashing the whole stream.
        state.write_u64(self.digest);
    }
}

impl fmt::Display for PatternKey {
    /// Renders the digest as a fixed-width hex tag.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.digest)
    }
}

/// Appends the structure (shape, column pointers, row indices — no
/// values) of `m` to the key stream, each section length-prefixed so
/// adjacent sections cannot alias.
fn push_structure(stream: &mut Vec<u64>, m: &CscMatrix) {
    stream.push(m.col_ptr().len() as u64);
    stream.extend(m.col_ptr().iter().map(|&p| p as u64));
    stream.push(m.row_ind().len() as u64);
    stream.extend(m.row_ind().iter().map(|&i| i as u64));
}

/// FNV-1a over the words of the structural stream.
fn fnv1a(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
            h ^= (w >> shift) & 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem(vals: &[f64; 4], cap: f64) -> Problem {
        let p = CscMatrix::from_dense(2, 2, &[vals[0], vals[1], 0.0, vals[2]])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, vals[3], 0.0, 0.0, 1.0]);
        Problem::new(
            p,
            vec![1.0, 1.0],
            a,
            vec![1.0, 0.0, 0.0],
            vec![1.0, cap, cap],
        )
        .unwrap()
    }

    #[test]
    fn same_structure_same_key_despite_values() {
        let a = PatternKey::of(
            &problem(&[4.0, 1.0, 2.0, 1.0], 0.7),
            KktBackend::Direct,
            Algorithm::Admm,
        );
        let b = PatternKey::of(
            &problem(&[9.0, 3.0, 5.0, 2.0], 0.2),
            KktBackend::Direct,
            Algorithm::Admm,
        );
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.structure_digest(), b.structure_digest());
    }

    #[test]
    fn structure_backend_or_algorithm_change_changes_key() {
        let base = PatternKey::of(
            &problem(&[4.0, 1.0, 2.0, 1.0], 0.7),
            KktBackend::Direct,
            Algorithm::Admm,
        );
        // Extra structural nonzero in A.
        let p = CscMatrix::from_dense(2, 2, &[4.0, 1.0, 0.0, 2.0])
            .upper_triangle()
            .unwrap();
        let a = CscMatrix::from_dense(3, 2, &[1.0, 1.0, 1.0, 0.5, 0.0, 1.0]);
        let other = Problem::new(
            p,
            vec![1.0, 1.0],
            a,
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.7, 0.7],
        )
        .unwrap();
        assert_ne!(
            base,
            PatternKey::of(&other, KktBackend::Direct, Algorithm::Admm)
        );
        assert_ne!(
            base,
            PatternKey::of(
                &problem(&[4.0, 1.0, 2.0, 1.0], 0.7),
                KktBackend::Indirect,
                Algorithm::Admm
            )
        );
        assert_ne!(
            base,
            PatternKey::of(
                &problem(&[4.0, 1.0, 2.0, 1.0], 0.7),
                KktBackend::Direct,
                Algorithm::Pdqp
            )
        );
    }

    #[test]
    fn solver_variants_share_the_structure_digest() {
        let spec = problem(&[4.0, 1.0, 2.0, 1.0], 0.7);
        let keys = [
            PatternKey::of(&spec, KktBackend::Direct, Algorithm::Admm),
            PatternKey::of(&spec, KktBackend::Indirect, Algorithm::Admm),
            PatternKey::of(&spec, KktBackend::Direct, Algorithm::Pdqp),
        ];
        for k in &keys[1..] {
            assert_ne!(keys[0].digest(), k.digest());
            assert_eq!(keys[0].structure_digest(), k.structure_digest());
        }
    }

    #[test]
    fn display_is_stable_hex() {
        let k = PatternKey::of(
            &problem(&[4.0, 1.0, 2.0, 1.0], 0.7),
            KktBackend::Direct,
            Algorithm::Admm,
        );
        let s = k.to_string();
        assert_eq!(s.len(), 16);
        assert_eq!(s, format!("{:016x}", k.digest()));
    }
}
