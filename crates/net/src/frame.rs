//! The MIB wire protocol: length-prefixed binary frames.
//!
//! Every frame on the wire is
//!
//! ```text
//! [ body_len: u32 LE ] [ body: body_len bytes ]
//! body = [ kind: u8 ] [ flags: u8 (reserved, 0) ] [ request_id: u64 LE ] [ payload ]
//! ```
//!
//! A connection opens with a [`Frame::Hello`] carrying the protocol
//! magic, the version and the tenant auth token; everything after the
//! [`Frame::HelloAck`] is request traffic keyed by *client-assigned*
//! request ids — the server answers out of order, and the client
//! demultiplexes on the id. Floating-point payloads travel as raw IEEE
//! 754 bit patterns ([`f64::to_bits`], little-endian), so a solution
//! vector crosses the wire **bitwise exactly** — the load harness's
//! answer-parity checks compare transported bits against direct solves.
//!
//! The decoder is defensive at every boundary: a frame longer than the
//! negotiated maximum is rejected *from its header alone* (before any
//! allocation), section counts are validated against the remaining body
//! length before a vector is reserved, and trailing bytes after a
//! well-formed payload are an error. Torn frames (partial reads) are a
//! non-event: [`FrameReader`] buffers until a full frame is in hand.

use std::fmt;

/// Protocol magic leading every [`Frame::Hello`]: `"MIBQ"` LE.
pub const MAGIC: u32 = 0x4d49_4251;

/// Newest protocol version spoken by this build.
///
/// * **v1** — the PR 9 wire format.
/// * **v2** — adds an optional 128-bit trace id to [`Frame::Submit`]
///   (section mask bit 3), propagating a client-chosen trace context
///   into the server's span pipeline and flight recorder.
///
/// Negotiation is one-sided and implicit: the client offers a version
/// in its [`Frame::Hello`], and a server accepting the connection
/// speaks exactly that version for the rest of the stream. A server
/// capped below the offer refuses with [`error_code::VERSION`]; the
/// client then retries the connection offering v1 — both directions
/// degrade to trace-id-free operation, never to an application error.
pub const VERSION: u16 = 2;

/// Oldest protocol version this build still accepts.
pub const MIN_VERSION: u16 = 1;

/// Default cap on a single frame body, bytes. Generous for solution
/// vectors of every benchmark domain, small enough that a hostile
/// length header cannot balloon server memory.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Fixed body prefix: kind, flags, request id.
const HEADER_BYTES: usize = 1 + 1 + 8;

/// Why a shed frame was sent instead of an answer (wire codes 0-2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant's token bucket was empty.
    RateLimited,
    /// The tenant was over its weighted fair share under congestion.
    OverShare,
    /// The shard queue was full.
    QueueFull,
}

impl ShedReason {
    fn code(self) -> u8 {
        match self {
            ShedReason::RateLimited => 0,
            ShedReason::OverShare => 1,
            ShedReason::QueueFull => 2,
        }
    }

    fn from_code(code: u8) -> Result<Self, FrameError> {
        match code {
            0 => Ok(ShedReason::RateLimited),
            1 => Ok(ShedReason::OverShare),
            2 => Ok(ShedReason::QueueFull),
            _ => Err(FrameError::Malformed("unknown shed reason")),
        }
    }
}

/// Terminal outcome code of a [`WireReply`] (wire codes 0-8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyCode {
    /// Solve converged; `x`/`y`/`obj_val` carry the answer.
    Solved,
    /// Solve hit the iteration limit.
    MaxIterations,
    /// Primal infeasibility certified.
    PrimalInfeasible,
    /// Dual infeasibility certified.
    DualInfeasible,
    /// Deadline tripped inside the solver loop.
    TimedOut,
    /// Cancellation observed inside the solver loop.
    Cancelled,
    /// Deadline expired while still queued; never solved.
    Expired,
    /// Cancelled while still queued; never solved.
    CancelledQueued,
    /// Parametric data rejected; `message` carries the error.
    Failed,
}

impl ReplyCode {
    fn code(self) -> u8 {
        match self {
            ReplyCode::Solved => 0,
            ReplyCode::MaxIterations => 1,
            ReplyCode::PrimalInfeasible => 2,
            ReplyCode::DualInfeasible => 3,
            ReplyCode::TimedOut => 4,
            ReplyCode::Cancelled => 5,
            ReplyCode::Expired => 6,
            ReplyCode::CancelledQueued => 7,
            ReplyCode::Failed => 8,
        }
    }

    fn from_code(code: u8) -> Result<Self, FrameError> {
        Ok(match code {
            0 => ReplyCode::Solved,
            1 => ReplyCode::MaxIterations,
            2 => ReplyCode::PrimalInfeasible,
            3 => ReplyCode::DualInfeasible,
            4 => ReplyCode::TimedOut,
            5 => ReplyCode::Cancelled,
            6 => ReplyCode::Expired,
            7 => ReplyCode::CancelledQueued,
            8 => ReplyCode::Failed,
            _ => return Err(FrameError::Malformed("unknown reply code")),
        })
    }

    /// Whether the reply carries a solution vector worth reading.
    pub fn is_solved(self) -> bool {
        self == ReplyCode::Solved
    }
}

/// Connection-level error codes carried by [`Frame::Error`].
pub mod error_code {
    /// The first frame was not a Hello.
    pub const EXPECTED_HELLO: u8 = 1;
    /// The Hello token matched no registered tenant.
    pub const AUTH_FAILED: u8 = 2;
    /// A frame failed to decode; the connection is being torn down.
    pub const PROTOCOL: u8 = 3;
    /// The server is shutting down.
    pub const SHUTTING_DOWN: u8 = 4;
    /// A submit named an endpoint outside the advertised catalog.
    pub const UNKNOWN_ENDPOINT: u8 = 5;
    /// The Hello offered a protocol version this server does not speak;
    /// retry the connection offering an older version.
    pub const VERSION: u8 = 6;
}

/// One entry of the endpoint catalog advertised in [`Frame::HelloAck`]:
/// a problem the server is prepared to solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointInfo {
    /// Index used by [`Frame::Submit`].
    pub id: u32,
    /// Whether submissions are portfolio-routed across backends.
    pub routed: bool,
    /// Number of decision variables (`q`/`x` length).
    pub num_vars: u32,
    /// Number of constraints (`l`/`u`/`y` length).
    pub num_constraints: u32,
    /// Human-readable endpoint name.
    pub name: String,
}

/// Terminal answer payload of a [`Frame::Response`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireReply {
    /// What happened.
    pub code: ReplyCode,
    /// Solver iterations (0 when the solve never ran).
    pub iterations: u32,
    /// Objective value (bit-exact; meaningful for `Solved`).
    pub obj_val: f64,
    /// Server-side queue wait, µs.
    pub queue_wait_us: u64,
    /// Server-side service time, µs.
    pub service_us: u64,
    /// Micro-batch size the request was drained in.
    pub batch_size: u32,
    /// Primal solution (bit-exact; empty unless the solve ran).
    pub x: Vec<f64>,
    /// Dual solution (bit-exact; empty unless the solve ran).
    pub y: Vec<f64>,
    /// Error detail for `Failed`, empty otherwise.
    pub message: String,
}

/// A decoded protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Connection opener: magic + version + tenant auth token.
    Hello {
        /// Protocol version the client offers (any of
        /// `MIN_VERSION..=VERSION`). An accepting server speaks exactly
        /// this version for the rest of the connection.
        version: u16,
        /// Tenant auth token (opaque bytes; the server maps it to a
        /// tenant label and admission policy).
        token: Vec<u8>,
    },
    /// Handshake answer: the authenticated tenant label and the
    /// endpoint catalog.
    HelloAck {
        /// Label the token authenticated as.
        tenant: String,
        /// Problems this server serves.
        endpoints: Vec<EndpointInfo>,
    },
    /// A parametric solve request against one catalog endpoint.
    Submit {
        /// Client-assigned id; the response echoes it.
        request_id: u64,
        /// Catalog index from the [`Frame::HelloAck`].
        endpoint: u32,
        /// Relative deadline in µs from server-side admission
        /// (0 = none).
        deadline_us: u64,
        /// Replacement linear cost, or `None` for the template's.
        q: Option<Vec<f64>>,
        /// Replacement bounds `(l, u)`, or `None` for the template's.
        bounds: Option<(Vec<f64>, Vec<f64>)>,
        /// Warm-start point `(x, y)`.
        warm_start: Option<(Vec<f64>, Vec<f64>)>,
        /// 128-bit trace-context id linking the server-side spans of
        /// this request (0 = none). v2 only: a v1 stream neither
        /// carries nor decodes it — the encoder silently drops a
        /// nonzero id when speaking v1 (graceful degradation).
        trace_id: u128,
    },
    /// Terminal answer to a [`Frame::Submit`].
    Response {
        /// Echo of the submit's id.
        request_id: u64,
        /// The answer.
        reply: WireReply,
    },
    /// Explicit load-shed answer to a [`Frame::Submit`]: the request
    /// was *not* queued; retry after the hint.
    Shed {
        /// Echo of the submit's id.
        request_id: u64,
        /// Which admission stage shed it.
        reason: ShedReason,
        /// Queue depth observed (queue-full sheds; 0 otherwise).
        depth: u32,
        /// Queue capacity (queue-full sheds; 0 otherwise).
        capacity: u32,
        /// Suggested client backoff, µs.
        retry_after_us: u64,
    },
    /// Cooperative cancellation of an in-flight request.
    Cancel {
        /// Id of the submit to cancel.
        request_id: u64,
    },
    /// Connection-level failure notice; the sender closes after it.
    Error {
        /// One of [`error_code`].
        code: u8,
        /// Human-readable detail.
        message: String,
    },
    /// Clean half-close: no more requests (client) / all answered
    /// (server).
    Goodbye,
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 0,
            Frame::HelloAck { .. } => 1,
            Frame::Submit { .. } => 2,
            Frame::Response { .. } => 3,
            Frame::Shed { .. } => 4,
            Frame::Cancel { .. } => 5,
            Frame::Error { .. } => 6,
            Frame::Goodbye => 7,
        }
    }

    fn request_id(&self) -> u64 {
        match self {
            Frame::Submit { request_id, .. }
            | Frame::Response { request_id, .. }
            | Frame::Shed { request_id, .. }
            | Frame::Cancel { request_id } => *request_id,
            _ => 0,
        }
    }
}

/// Decoder/protocol errors. Any of these tears the connection down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length header exceeds the negotiated maximum.
    Oversized {
        /// Claimed body length.
        len: usize,
        /// Negotiated maximum.
        max: usize,
    },
    /// The Hello magic was wrong (not a MIB client).
    BadMagic(u32),
    /// The Hello version is not spoken by this build.
    BadVersion {
        /// Version the peer offered.
        got: u16,
    },
    /// Unknown frame kind byte.
    UnknownKind(u8),
    /// A payload failed structural validation.
    Malformed(&'static str),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            FrameError::BadMagic(got) => write!(f, "bad protocol magic {got:#010x}"),
            FrameError::BadVersion { got } => {
                write!(
                    f,
                    "peer offered protocol version {got}, this build speaks {MIN_VERSION}..={VERSION}"
                )
            }
            FrameError::UnknownKind(kind) => write!(f, "unknown frame kind {kind}"),
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64_vec(out: &mut Vec<u8>, v: &[f64]) {
    put_u32(
        out,
        u32::try_from(v.len()).expect("vector fits a u32 count"),
    );
    for &x in v {
        put_u64(out, x.to_bits());
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(
        out,
        u32::try_from(s.len()).expect("string fits a u32 count"),
    );
    out.extend_from_slice(s.as_bytes());
}

/// Encodes `frame` (length prefix included) onto `out`, speaking the
/// newest protocol dialect ([`VERSION`]).
///
/// # Panics
///
/// Panics if a payload section exceeds `u32` counts — unreachable for
/// anything produced by this stack.
pub fn encode(frame: &Frame, out: &mut Vec<u8>) {
    encode_versioned(frame, VERSION, out);
}

/// Encodes `frame` speaking the `wire_version` dialect — how a peer
/// that negotiated an older version keeps its stream decodable by the
/// other side. The only dialect difference today is the v2 submit
/// trace-id section, which a v1 encoding silently drops.
///
/// # Panics
///
/// As [`encode`].
pub fn encode_versioned(frame: &Frame, wire_version: u16, out: &mut Vec<u8>) {
    let len_at = out.len();
    put_u32(out, 0); // patched below
    out.push(frame.kind());
    out.push(0); // flags
    put_u64(out, frame.request_id());
    match frame {
        Frame::Hello { version, token } => {
            put_u32(out, MAGIC);
            put_u16(out, *version);
            put_u16(
                out,
                u16::try_from(token.len()).expect("auth token fits a u16 length"),
            );
            out.extend_from_slice(token);
        }
        Frame::HelloAck { tenant, endpoints } => {
            put_str(out, tenant);
            put_u32(
                out,
                u32::try_from(endpoints.len()).expect("catalog fits a u32 count"),
            );
            for e in endpoints {
                put_u32(out, e.id);
                out.push(u8::from(e.routed));
                put_u32(out, e.num_vars);
                put_u32(out, e.num_constraints);
                put_str(out, &e.name);
            }
        }
        Frame::Submit {
            endpoint,
            deadline_us,
            q,
            bounds,
            warm_start,
            trace_id,
            ..
        } => {
            put_u32(out, *endpoint);
            put_u64(out, *deadline_us);
            let trace = *trace_id != 0 && wire_version >= 2;
            let mask = u8::from(q.is_some())
                | (u8::from(bounds.is_some()) << 1)
                | (u8::from(warm_start.is_some()) << 2)
                | (u8::from(trace) << 3);
            out.push(mask);
            if let Some(q) = q {
                put_f64_vec(out, q);
            }
            if let Some((l, u)) = bounds {
                put_f64_vec(out, l);
                put_f64_vec(out, u);
            }
            if let Some((x, y)) = warm_start {
                put_f64_vec(out, x);
                put_f64_vec(out, y);
            }
            if trace {
                put_u64(out, *trace_id as u64);
                put_u64(out, (*trace_id >> 64) as u64);
            }
        }
        Frame::Response { reply, .. } => {
            out.push(reply.code.code());
            put_u32(out, reply.iterations);
            put_u64(out, reply.obj_val.to_bits());
            put_u64(out, reply.queue_wait_us);
            put_u64(out, reply.service_us);
            put_u32(out, reply.batch_size);
            put_f64_vec(out, &reply.x);
            put_f64_vec(out, &reply.y);
            put_str(out, &reply.message);
        }
        Frame::Shed {
            reason,
            depth,
            capacity,
            retry_after_us,
            ..
        } => {
            out.push(reason.code());
            put_u32(out, *depth);
            put_u32(out, *capacity);
            put_u64(out, *retry_after_us);
        }
        Frame::Cancel { .. } | Frame::Goodbye => {}
        Frame::Error { code, message } => {
            out.push(*code);
            put_str(out, message);
        }
    }
    let body_len = u32::try_from(out.len() - len_at - 4).expect("frame fits a u32 length");
    out[len_at..len_at + 4].copy_from_slice(&body_len.to_le_bytes());
}

/// Convenience: encodes into a fresh buffer.
pub fn encode_to_vec(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    encode(frame, &mut out);
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(FrameError::Malformed("section runs past the frame end"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>, FrameError> {
        let count = self.u32()? as usize;
        // Validate the claimed count against the bytes actually present
        // before allocating: a hostile count cannot balloon memory.
        let raw = self.take(
            count
                .checked_mul(8)
                .ok_or(FrameError::Malformed("vector length overflows"))?,
        )?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect())
    }

    fn string(&mut self) -> Result<String, FrameError> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| FrameError::Malformed("string section is not UTF-8"))
    }

    fn finish(&self) -> Result<(), FrameError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(FrameError::Malformed("trailing bytes after the payload"))
        }
    }
}

/// Decodes one frame body (the bytes after the length prefix),
/// speaking the newest protocol dialect ([`VERSION`]).
pub fn decode_body(body: &[u8]) -> Result<Frame, FrameError> {
    decode_body_versioned(body, VERSION)
}

/// Decodes one frame body under the `wire_version` dialect (what a
/// server sets after negotiating the client's offered version): at v1
/// the submit trace-id section bit is unknown and rejected.
pub fn decode_body_versioned(body: &[u8], wire_version: u16) -> Result<Frame, FrameError> {
    if body.len() < HEADER_BYTES {
        return Err(FrameError::Malformed("body shorter than the fixed header"));
    }
    let kind = body[0];
    // body[1] is the reserved flags byte; tolerated, not interpreted.
    let request_id = u64::from_le_bytes(body[2..10].try_into().expect("8 bytes"));
    let mut c = Cursor {
        bytes: body,
        pos: HEADER_BYTES,
    };
    let frame = match kind {
        0 => {
            let magic = c.u32()?;
            if magic != MAGIC {
                return Err(FrameError::BadMagic(magic));
            }
            let version = c.u16()?;
            // The Hello is version *negotiation*, not version use: any
            // offer this build can speak is accepted here, and the
            // connection then runs at the offered version.
            if !(MIN_VERSION..=VERSION).contains(&version) {
                return Err(FrameError::BadVersion { got: version });
            }
            let token_len = c.u16()? as usize;
            let token = c.take(token_len)?.to_vec();
            Frame::Hello { version, token }
        }
        1 => {
            let tenant = c.string()?;
            let count = c.u32()? as usize;
            let mut endpoints = Vec::new();
            for _ in 0..count {
                endpoints.push(EndpointInfo {
                    id: c.u32()?,
                    routed: c.u8()? != 0,
                    num_vars: c.u32()?,
                    num_constraints: c.u32()?,
                    name: c.string()?,
                });
            }
            Frame::HelloAck { tenant, endpoints }
        }
        2 => {
            let endpoint = c.u32()?;
            let deadline_us = c.u64()?;
            let mask = c.u8()?;
            let known = if wire_version >= 2 { 0b1111 } else { 0b111 };
            if mask & !known != 0 {
                return Err(FrameError::Malformed("unknown submit section bits"));
            }
            let q = (mask & 1 != 0).then(|| c.f64_vec()).transpose()?;
            let bounds = if mask & 2 != 0 {
                Some((c.f64_vec()?, c.f64_vec()?))
            } else {
                None
            };
            let warm_start = if mask & 4 != 0 {
                Some((c.f64_vec()?, c.f64_vec()?))
            } else {
                None
            };
            let trace_id = if mask & 8 != 0 {
                let lo = c.u64()?;
                let hi = c.u64()?;
                (u128::from(hi) << 64) | u128::from(lo)
            } else {
                0
            };
            Frame::Submit {
                request_id,
                endpoint,
                deadline_us,
                q,
                bounds,
                warm_start,
                trace_id,
            }
        }
        3 => Frame::Response {
            request_id,
            reply: WireReply {
                code: ReplyCode::from_code(c.u8()?)?,
                iterations: c.u32()?,
                obj_val: f64::from_bits(c.u64()?),
                queue_wait_us: c.u64()?,
                service_us: c.u64()?,
                batch_size: c.u32()?,
                x: c.f64_vec()?,
                y: c.f64_vec()?,
                message: c.string()?,
            },
        },
        4 => Frame::Shed {
            request_id,
            reason: ShedReason::from_code(c.u8()?)?,
            depth: c.u32()?,
            capacity: c.u32()?,
            retry_after_us: c.u64()?,
        },
        5 => Frame::Cancel { request_id },
        6 => Frame::Error {
            code: c.u8()?,
            message: c.string()?,
        },
        7 => Frame::Goodbye,
        other => return Err(FrameError::UnknownKind(other)),
    };
    c.finish()?;
    Ok(frame)
}

/// Incremental frame decoder over a byte stream: feed reads of any
/// size, pull complete frames. Torn frames simply wait for more bytes;
/// an oversized length header errors before any payload is buffered
/// beyond what was already received.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
    max_frame: usize,
    version: u16,
}

impl FrameReader {
    /// A reader enforcing `max_frame` bytes per body, speaking the
    /// newest dialect ([`VERSION`]) until [`set_version`] says
    /// otherwise.
    ///
    /// [`set_version`]: FrameReader::set_version
    pub fn new(max_frame: usize) -> Self {
        FrameReader {
            buf: Vec::new(),
            start: 0,
            max_frame,
            version: VERSION,
        }
    }

    /// Pins the dialect for subsequent frames — a server calls this
    /// with the client's offered Hello version right after the
    /// handshake, before any request traffic is decoded.
    pub fn set_version(&mut self, version: u16) {
        self.version = version;
    }

    /// The dialect currently decoded.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing (amortized O(1)).
        if self.start > 0 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pulls the next complete frame, `Ok(None)` if more bytes are
    /// needed. After an `Err` the stream is unrecoverable — tear the
    /// connection down.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let body_len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes")) as usize;
        if body_len > self.max_frame {
            return Err(FrameError::Oversized {
                len: body_len,
                max: self.max_frame,
            });
        }
        if avail.len() < 4 + body_len {
            return Ok(None);
        }
        let frame = decode_body_versioned(&avail[4..4 + body_len], self.version)?;
        self.start += 4 + body_len;
        Ok(Some(frame))
    }

    /// Bytes buffered but not yet consumed.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: &Frame) -> Frame {
        let bytes = encode_to_vec(frame);
        let mut r = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
        r.extend(&bytes);
        let decoded = r
            .next_frame()
            .expect("well-formed frame")
            .expect("complete frame");
        assert_eq!(r.pending_bytes(), 0, "no leftover bytes");
        decoded
    }

    #[test]
    fn every_frame_kind_round_trips() {
        let frames = [
            Frame::Hello {
                version: VERSION,
                token: b"tenant-a-secret".to_vec(),
            },
            Frame::Hello {
                version: MIN_VERSION,
                token: b"old-client".to_vec(),
            },
            Frame::HelloAck {
                tenant: "tenant-a".into(),
                endpoints: vec![
                    EndpointInfo {
                        id: 0,
                        routed: false,
                        num_vars: 12,
                        num_constraints: 30,
                        name: "Portfolio[0]".into(),
                    },
                    EndpointInfo {
                        id: 1,
                        routed: true,
                        num_vars: 5,
                        num_constraints: 7,
                        name: "Mpc[1]".into(),
                    },
                ],
            },
            Frame::Submit {
                request_id: 42,
                endpoint: 1,
                deadline_us: 30_000_000,
                q: Some(vec![1.5, -2.25, f64::NAN, 0.0]),
                bounds: Some((vec![f64::NEG_INFINITY, 0.0], vec![1.0, f64::INFINITY])),
                warm_start: Some((vec![0.1], vec![0.2, 0.3])),
                trace_id: 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210,
            },
            Frame::Submit {
                request_id: 43,
                endpoint: 0,
                deadline_us: 0,
                q: None,
                bounds: None,
                warm_start: None,
                trace_id: 0,
            },
            Frame::Response {
                request_id: 42,
                reply: WireReply {
                    code: ReplyCode::Solved,
                    iterations: 75,
                    obj_val: -17.25,
                    queue_wait_us: 120,
                    service_us: 900,
                    batch_size: 4,
                    x: vec![1.0, -0.0, 3.5e-300],
                    y: vec![2.0; 7],
                    message: String::new(),
                },
            },
            Frame::Shed {
                request_id: 99,
                reason: ShedReason::QueueFull,
                depth: 64,
                capacity: 64,
                retry_after_us: 2_000,
            },
            Frame::Cancel { request_id: 7 },
            Frame::Error {
                code: error_code::PROTOCOL,
                message: "bad juju".into(),
            },
            Frame::Goodbye,
        ];
        for frame in &frames {
            let decoded = roundtrip(frame);
            // NaN payloads break PartialEq; compare the re-encoding
            // instead, which is bitwise.
            assert_eq!(
                encode_to_vec(&decoded),
                encode_to_vec(frame),
                "round-trip must be bitwise: {frame:?}"
            );
        }
    }

    #[test]
    fn float_bits_survive_exactly() {
        let patterns = [
            0x7ff8_0000_dead_beefu64, // NaN with payload
            0x7ff0_0000_0000_0000,    // +inf
            0x8000_0000_0000_0000,    // -0.0
            0x0000_0000_0000_0001,    // smallest subnormal
            0x3ff0_0000_0000_0000,    // 1.0
        ];
        let q: Vec<f64> = patterns.iter().map(|&b| f64::from_bits(b)).collect();
        let Frame::Submit { q: Some(out), .. } = roundtrip(&Frame::Submit {
            request_id: 1,
            endpoint: 0,
            deadline_us: 0,
            q: Some(q),
            bounds: None,
            warm_start: None,
            trace_id: 0,
        }) else {
            panic!("submit round-trip changed the frame kind")
        };
        let bits: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, patterns);
    }

    #[test]
    fn torn_frames_reassemble_byte_by_byte() {
        let frames = vec![
            Frame::Cancel { request_id: 5 },
            Frame::Submit {
                request_id: 6,
                endpoint: 2,
                deadline_us: 17,
                q: Some(vec![1.0, 2.0, 3.0]),
                bounds: None,
                warm_start: None,
                trace_id: u128::MAX,
            },
            Frame::Goodbye,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            encode(f, &mut wire);
        }
        let mut r = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
        let mut seen = Vec::new();
        for &b in &wire {
            r.extend(&[b]);
            while let Some(f) = r.next_frame().expect("stream is well-formed") {
                seen.push(f);
            }
        }
        assert_eq!(seen, frames);
        assert_eq!(r.pending_bytes(), 0);
    }

    #[test]
    fn oversized_length_header_is_rejected_before_buffering() {
        let mut r = FrameReader::new(1024);
        r.extend(&10_000_000u32.to_le_bytes());
        assert_eq!(
            r.next_frame(),
            Err(FrameError::Oversized {
                len: 10_000_000,
                max: 1024
            })
        );
    }

    #[test]
    fn bad_magic_and_bad_version_are_rejected() {
        let mut wire = encode_to_vec(&Frame::Hello {
            version: VERSION,
            token: vec![1, 2],
        });
        // Corrupt the magic (body offset: 4 len + 10 header).
        wire[14] ^= 0xff;
        let mut r = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
        r.extend(&wire);
        assert!(matches!(r.next_frame(), Err(FrameError::BadMagic(_))));

        let mut wire = encode_to_vec(&Frame::Hello {
            version: VERSION,
            token: vec![],
        });
        // Corrupt the version (low byte of the LE u16 at body offset 4).
        wire[18] = 0x7f;
        let mut r = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
        r.extend(&wire);
        assert_eq!(r.next_frame(), Err(FrameError::BadVersion { got: 0x7f }));

        // Version 0 is below MIN_VERSION: rejected.
        let mut wire = encode_to_vec(&Frame::Hello {
            version: VERSION,
            token: vec![],
        });
        wire[18] = 0;
        let mut r = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
        r.extend(&wire);
        assert_eq!(r.next_frame(), Err(FrameError::BadVersion { got: 0 }));

        // Every version in the supported range decodes.
        for v in MIN_VERSION..=VERSION {
            let wire = encode_to_vec(&Frame::Hello {
                version: v,
                token: b"tok".to_vec(),
            });
            let mut r = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
            r.extend(&wire);
            assert_eq!(
                r.next_frame(),
                Ok(Some(Frame::Hello {
                    version: v,
                    token: b"tok".to_vec(),
                }))
            );
        }
    }

    #[test]
    fn v1_encoding_silently_drops_the_trace_id() {
        let submit = Frame::Submit {
            request_id: 9,
            endpoint: 1,
            deadline_us: 100,
            q: Some(vec![0.5]),
            bounds: None,
            warm_start: None,
            trace_id: 0xabcd_ef01_2345_6789_abcd_ef01_2345_6789,
        };
        let mut v1 = Vec::new();
        encode_versioned(&submit, 1, &mut v1);
        let mut v2 = Vec::new();
        encode_versioned(&submit, 2, &mut v2);
        // The v1 wire image is the v2 image minus the 16-byte trace
        // section (and the mask bit).
        assert_eq!(v1.len() + 16, v2.len());

        // A v1 reader accepts the v1 image and reports trace_id 0.
        let decoded = decode_body_versioned(&v1[4..], 1).expect("v1 image decodes at v1");
        let Frame::Submit { trace_id, .. } = decoded else {
            panic!("expected a submit");
        };
        assert_eq!(trace_id, 0);

        // A v2 reader round-trips the id.
        let decoded = decode_body_versioned(&v2[4..], 2).expect("v2 image decodes at v2");
        let Frame::Submit { trace_id, .. } = decoded else {
            panic!("expected a submit");
        };
        assert_eq!(trace_id, 0xabcd_ef01_2345_6789_abcd_ef01_2345_6789);
    }

    #[test]
    fn v1_reader_rejects_the_trace_section_bit() {
        let submit = Frame::Submit {
            request_id: 9,
            endpoint: 1,
            deadline_us: 100,
            q: None,
            bounds: None,
            warm_start: None,
            trace_id: 7,
        };
        let mut v2 = Vec::new();
        encode_versioned(&submit, 2, &mut v2);
        // At wire version 1 the trace bit is an unknown section.
        assert_eq!(
            decode_body_versioned(&v2[4..], 1),
            Err(FrameError::Malformed("unknown submit section bits"))
        );
    }

    #[test]
    fn zero_trace_id_costs_no_wire_bytes_at_v2() {
        let submit = Frame::Submit {
            request_id: 9,
            endpoint: 1,
            deadline_us: 100,
            q: None,
            bounds: None,
            warm_start: None,
            trace_id: 0,
        };
        let mut v1 = Vec::new();
        encode_versioned(&submit, 1, &mut v1);
        let mut v2 = Vec::new();
        encode_versioned(&submit, 2, &mut v2);
        assert_eq!(v1, v2);
    }

    #[test]
    fn unknown_kind_and_trailing_bytes_are_rejected() {
        let mut body = vec![250u8, 0];
        body.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(decode_body(&body), Err(FrameError::UnknownKind(250)));

        let mut wire = encode_to_vec(&Frame::Goodbye);
        // Lie about the length: one trailing byte inside the body.
        wire.push(0xaa);
        let len = (wire.len() - 4) as u32;
        wire[..4].copy_from_slice(&len.to_le_bytes());
        let mut r = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
        r.extend(&wire);
        assert_eq!(
            r.next_frame(),
            Err(FrameError::Malformed("trailing bytes after the payload"))
        );
    }

    #[test]
    fn hostile_vector_count_cannot_balloon_memory() {
        // A submit claiming a 500M-entry q in a tiny body must fail on
        // the length check, not attempt the allocation.
        let mut body = vec![2u8, 0];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes()); // endpoint
        body.extend_from_slice(&0u64.to_le_bytes()); // deadline
        body.push(1); // mask: q present
        body.extend_from_slice(&500_000_000u32.to_le_bytes());
        body.extend_from_slice(&[0u8; 16]); // far fewer than claimed
        assert_eq!(
            decode_body(&body),
            Err(FrameError::Malformed("section runs past the frame end"))
        );
    }

    #[test]
    fn truncated_header_waits_instead_of_erroring() {
        let wire = encode_to_vec(&Frame::Goodbye);
        let mut r = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
        r.extend(&wire[..3]);
        assert_eq!(r.next_frame(), Ok(None));
        r.extend(&wire[3..]);
        assert_eq!(r.next_frame(), Ok(Some(Frame::Goodbye)));
    }
}
