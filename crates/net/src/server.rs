//! The network front-end: a TCP listener multiplexing client
//! connections onto a [`QpServer`].
//!
//! Threading model (std threads + blocking-with-timeout sockets, no
//! async runtime):
//!
//! * one **acceptor** thread polls a non-blocking listener;
//! * each connection gets a **reader** thread (blocking reads with a
//!   short timeout so shutdown is observed promptly) and a **writer**
//!   thread draining an mpsc channel of outbound frames — solver
//!   workers never block on a slow client socket;
//! * responses are demultiplexed by *client-assigned* request id: the
//!   reader registers a [`Ticket::on_ready`] callback that forwards the
//!   finished [`Response`] to the writer channel, so no thread ever
//!   parks on an individual ticket.
//!
//! Admission control runs **in front of** the shard queues. Every
//! submit passes the tenant's token bucket and (under congestion) the
//! weighted fair-share check of [`AdmissionController`]; a rejection
//! becomes an explicit [`Frame::Shed`] with a retry-after hint, as does
//! a bounded-queue rejection ([`SubmitError::QueueFull`]) — a client
//! never observes a silently dropped request or a hung connection.
//!
//! [`Ticket::on_ready`]: mib_serve::Ticket::on_ready
//! [`SubmitError::QueueFull`]: mib_serve::SubmitError::QueueFull

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use mib_qp::Status;
use mib_serve::{
    queue_full_retry_after, AdmissionConfig, AdmissionController, CancelHandle, Metrics, Outcome,
    PortfolioId, QpServer, Request, Response, SubmitError, TenantId, TenantPolicy, TenantSlot,
};

use crate::frame::{
    self, encode_to_vec, error_code, EndpointInfo, Frame, FrameReader, ReplyCode, ShedReason,
    WireReply, DEFAULT_MAX_FRAME_BYTES, MIN_VERSION, VERSION,
};
use mib_obs::AdminServer;

/// What a catalog endpoint submits to.
#[derive(Debug, Clone, Copy)]
pub enum EndpointTarget {
    /// A single registered tenant (`QpServer::submit`).
    Tenant(TenantId),
    /// A portfolio, routed across backends (`QpServer::submit_routed`).
    Portfolio(PortfolioId),
}

/// One entry of the endpoint catalog a server advertises.
#[derive(Debug, Clone)]
pub struct EndpointSpec {
    /// Where submissions go.
    pub target: EndpointTarget,
    /// Name echoed in the [`Frame::HelloAck`] catalog.
    pub name: String,
    /// Decision-variable count (`q`/`x` length), advertised to clients.
    pub num_vars: usize,
    /// Constraint count (`l`/`u`/`y` length), advertised to clients.
    pub num_constraints: usize,
}

/// One accepted tenant credential.
#[derive(Debug, Clone)]
pub struct TenantAuth {
    /// Opaque token the client presents in its [`Frame::Hello`].
    pub token: Vec<u8>,
    /// Label used for admission metrics
    /// (`mib_serve_admission_*_total{tenant="..."}`).
    pub label: String,
    /// Rate/weight policy enforced by the admission controller.
    pub policy: TenantPolicy,
}

/// Network front-end configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Cap on a single frame body; oversized frames tear the
    /// connection down before any allocation.
    pub max_frame_bytes: usize,
    /// Admission-control window/slack (see [`AdmissionConfig`]).
    pub admission: AdmissionConfig,
    /// Socket read timeout of reader threads: the granularity at which
    /// a parked reader observes shutdown.
    pub read_timeout: Duration,
    /// Highest wire version this server negotiates. Defaults to
    /// [`VERSION`]; capping it below lets deployments hold a fleet at
    /// an older protocol while clients that offer newer versions fall
    /// back transparently (they re-offer each older version on an
    /// `error_code::VERSION` refusal).
    pub max_version: u16,
    /// Where to bind the observability admin listener (`/metrics`,
    /// `/healthz`, `/slo`, `/trace/*`), e.g. `"127.0.0.1:0"`. `None`
    /// (the default) runs no admin plane.
    pub admin_addr: Option<String>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            admission: AdmissionConfig::default(),
            read_timeout: Duration::from_millis(25),
            max_version: VERSION,
            admin_addr: None,
        }
    }
}

/// Outbound traffic of one connection, drained by its writer thread.
enum WriterMsg {
    /// A finished serve response for the given request id.
    Reply(u64, Response),
    /// Any pre-built frame (HelloAck, Shed, Error, Goodbye).
    Frame(Frame),
    /// Flush and exit.
    Shutdown,
}

struct Shared {
    qp: Arc<QpServer>,
    metrics: Arc<Metrics>,
    admission: AdmissionController,
    endpoints: Vec<EndpointSpec>,
    catalog: Vec<EndpointInfo>,
    auth: HashMap<Vec<u8>, (TenantSlot, String)>,
    cfg: NetConfig,
    stop: AtomicBool,
}

/// The TCP front-end. Dropping it shuts the listener and every
/// connection down; in-flight solves still complete and are answered
/// before the writer threads exit.
pub struct NetServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    admin: Option<AdminServer>,
}

impl NetServer {
    /// Binds `addr` and starts accepting connections. `endpoints` is
    /// the catalog advertised to every authenticated client; `auth`
    /// maps Hello tokens to tenant labels and admission policies.
    ///
    /// # Errors
    ///
    /// Propagates listener bind/configuration failures.
    ///
    /// # Panics
    ///
    /// Panics if `endpoints` or `auth` is empty.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        qp: Arc<QpServer>,
        endpoints: Vec<EndpointSpec>,
        auth: Vec<TenantAuth>,
        cfg: NetConfig,
    ) -> io::Result<NetServer> {
        assert!(
            !endpoints.is_empty(),
            "the endpoint catalog must be non-empty"
        );
        assert!(
            !auth.is_empty(),
            "at least one tenant credential is required"
        );
        assert!(
            (MIN_VERSION..=VERSION).contains(&cfg.max_version),
            "max_version must be a wire version this build can speak"
        );
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let metrics = qp.metrics();
        let admission = AdmissionController::new(cfg.admission, Arc::clone(&metrics));
        let now = Instant::now();
        let mut tokens = HashMap::new();
        for entry in auth {
            let slot = admission.register(&entry.label, entry.policy, now);
            tokens.insert(entry.token, (slot, entry.label));
        }
        let catalog = endpoints
            .iter()
            .enumerate()
            .map(|(id, e)| EndpointInfo {
                id: u32::try_from(id).expect("catalog fits u32 ids"),
                routed: matches!(e.target, EndpointTarget::Portfolio(_)),
                num_vars: u32::try_from(e.num_vars).expect("num_vars fits u32"),
                num_constraints: u32::try_from(e.num_constraints)
                    .expect("num_constraints fits u32"),
                name: e.name.clone(),
            })
            .collect();

        let shared = Arc::new(Shared {
            qp,
            metrics,
            admission,
            endpoints,
            catalog,
            auth: tokens,
            cfg,
            stop: AtomicBool::new(false),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        // Bind the admin plane before the acceptor thread exists so a
        // failed admin bind cannot leak a running acceptor.
        let admin = match &shared.cfg.admin_addr {
            Some(addr) => Some(AdminServer::bind(addr.as_str(), Arc::clone(&shared.qp))?),
            None => None,
        };

        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            thread::Builder::new()
                .name("mib-net-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &conns))
                .expect("spawn acceptor thread")
        };

        Ok(NetServer {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            conns,
            admin,
        })
    }

    /// The bound address (use with port 0 to discover the OS pick).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound address of the admin plane, when one was configured.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin.as_ref().map(AdminServer::local_addr)
    }

    /// The underlying serve runtime.
    pub fn qp(&self) -> &Arc<QpServer> {
        &self.shared.qp
    }

    /// Stops accepting, tears every connection down (in-flight solves
    /// still get answered), and joins all threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = {
            let mut conns = self.conns.lock().expect("connection registry lock");
            conns.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        if let Some(admin) = self.admin.as_mut() {
            admin.shutdown();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let handle = thread::Builder::new()
                    .name("mib-net-conn".into())
                    .spawn(move || serve_connection(stream, &shared))
                    .expect("spawn connection thread");
                conns.lock().expect("connection registry lock").push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Reads bytes until the next frame or a fatal condition. `Ok(None)`
/// means "no full frame yet, stop flag not raised" — the caller decides
/// whether to keep waiting.
enum ReadStep {
    Frame(Frame, usize),
    /// Peer closed its write half.
    Eof,
    /// Timeout tick — no bytes; check stop/drain conditions.
    Idle,
    /// Decode failure: the stream is unrecoverable.
    Corrupt(frame::FrameError),
    /// Socket error.
    Io,
}

fn read_step(stream: &mut TcpStream, reader: &mut FrameReader, buf: &mut [u8]) -> ReadStep {
    // Drain frames already buffered before touching the socket.
    let before = reader.pending_bytes();
    match reader.next_frame() {
        // Consumed bytes minus the 4-byte length prefix = the body size.
        Ok(Some(f)) => return ReadStep::Frame(f, before - reader.pending_bytes() - 4),
        Ok(None) => {}
        Err(e) => return ReadStep::Corrupt(e),
    }
    match stream.read(buf) {
        Ok(0) => ReadStep::Eof,
        Ok(n) => {
            reader.extend(&buf[..n]);
            let before = reader.pending_bytes();
            match reader.next_frame() {
                Ok(Some(f)) => ReadStep::Frame(f, before - reader.pending_bytes() - 4),
                Ok(None) => ReadStep::Idle,
                Err(e) => ReadStep::Corrupt(e),
            }
        }
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            ReadStep::Idle
        }
        Err(_) => ReadStep::Io,
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let metrics = &shared.metrics;
    metrics.inc(&metrics.counters.net_connections_opened);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));

    if let Some((slot, label, version)) = handshake(&mut stream, shared) {
        connection_loop(&mut stream, shared, slot, &label, version);
    }
    let _ = stream.shutdown(Shutdown::Both);
    metrics.inc(&metrics.counters.net_connections_closed);
}

/// Runs the Hello/HelloAck exchange. `None` means the connection was
/// refused (an Error frame was already sent best-effort). On success
/// the returned version is the one the Hello offered — the whole
/// connection speaks exactly that version from here on.
fn handshake(stream: &mut TcpStream, shared: &Arc<Shared>) -> Option<(TenantSlot, String, u16)> {
    let metrics = &shared.metrics;
    let mut reader = FrameReader::new(shared.cfg.max_frame_bytes);
    let mut buf = vec![0u8; 64 * 1024];
    let patience = Instant::now() + Duration::from_secs(5);
    loop {
        if shared.stop.load(Ordering::SeqCst) || Instant::now() > patience {
            send_direct(
                stream,
                &Frame::Error {
                    code: error_code::SHUTTING_DOWN,
                    message: "server unavailable".into(),
                },
                metrics,
            );
            return None;
        }
        match read_step(stream, &mut reader, &mut buf) {
            ReadStep::Idle => {}
            ReadStep::Eof | ReadStep::Io => return None,
            ReadStep::Corrupt(e) => {
                metrics.inc(&metrics.counters.net_frame_decode_errors);
                send_direct(
                    stream,
                    &Frame::Error {
                        code: error_code::PROTOCOL,
                        message: e.to_string(),
                    },
                    metrics,
                );
                return None;
            }
            ReadStep::Frame(Frame::Hello { version, token }, bytes) => {
                metrics.inc(&metrics.counters.net_frames_received);
                metrics.net_frame_bytes.observe(bytes as u64);
                if version > shared.cfg.max_version {
                    // Refuse with the VERSION code: a conforming client
                    // reconnects offering its next-older version.
                    send_direct(
                        stream,
                        &Frame::Error {
                            code: error_code::VERSION,
                            message: format!(
                                "wire version {version} refused; highest accepted is {}",
                                shared.cfg.max_version
                            ),
                        },
                        metrics,
                    );
                    return None;
                }
                match shared.auth.get(&token) {
                    Some((slot, label)) => {
                        if reader.pending_bytes() > 0 {
                            // Pipelined bytes after the Hello would be
                            // lost when this reader is dropped; a
                            // conforming client waits for the ack.
                            metrics.inc(&metrics.counters.net_frame_decode_errors);
                            send_direct(
                                stream,
                                &Frame::Error {
                                    code: error_code::PROTOCOL,
                                    message: "frames pipelined before the HelloAck".into(),
                                },
                                metrics,
                            );
                            return None;
                        }
                        send_direct(
                            stream,
                            &Frame::HelloAck {
                                tenant: label.clone(),
                                endpoints: shared.catalog.clone(),
                            },
                            metrics,
                        );
                        return Some((*slot, label.clone(), version));
                    }
                    None => {
                        metrics.inc(&metrics.counters.net_auth_failures);
                        send_direct(
                            stream,
                            &Frame::Error {
                                code: error_code::AUTH_FAILED,
                                message: "unknown tenant token".into(),
                            },
                            metrics,
                        );
                        return None;
                    }
                }
            }
            ReadStep::Frame(_, bytes) => {
                metrics.inc(&metrics.counters.net_frames_received);
                metrics.net_frame_bytes.observe(bytes as u64);
                send_direct(
                    stream,
                    &Frame::Error {
                        code: error_code::EXPECTED_HELLO,
                        message: "the first frame must be a Hello".into(),
                    },
                    metrics,
                );
                return None;
            }
        }
    }
}

fn connection_loop(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    slot: TenantSlot,
    _label: &str,
    version: u16,
) {
    let metrics = Arc::clone(&shared.metrics);
    let (tx, rx) = mpsc::channel::<WriterMsg>();
    let writer = {
        let out = stream.try_clone().expect("clone connection socket");
        let metrics = Arc::clone(&metrics);
        thread::Builder::new()
            .name("mib-net-write".into())
            .spawn(move || writer_loop(out, &rx, &metrics))
            .expect("spawn writer thread")
    };

    // In-flight requests of this connection: id -> cancel handle. An
    // entry is removed by the on_ready callback *after* the reply is
    // queued, so "pending is empty" implies every answer is at least
    // in the writer channel (Goodbye ordering relies on this).
    let pending: Arc<Mutex<HashMap<u64, CancelHandle>>> = Arc::new(Mutex::new(HashMap::new()));

    let mut reader = FrameReader::new(shared.cfg.max_frame_bytes);
    reader.set_version(version);
    let mut buf = vec![0u8; 256 * 1024];
    let mut goodbye = false;

    loop {
        if shared.stop.load(Ordering::SeqCst) {
            let _ = tx.send(WriterMsg::Frame(Frame::Error {
                code: error_code::SHUTTING_DOWN,
                message: "server shutting down".into(),
            }));
            break;
        }
        if goodbye {
            // No more requests are coming; once every in-flight answer
            // is queued behind us, confirm and part ways.
            if pending.lock().expect("pending map lock").is_empty() {
                let _ = tx.send(WriterMsg::Frame(Frame::Goodbye));
                break;
            }
            thread::sleep(Duration::from_millis(1));
            continue;
        }
        match read_step(stream, &mut reader, &mut buf) {
            ReadStep::Idle => {}
            ReadStep::Eof | ReadStep::Io => break,
            ReadStep::Corrupt(e) => {
                metrics.inc(&metrics.counters.net_frame_decode_errors);
                let _ = tx.send(WriterMsg::Frame(Frame::Error {
                    code: error_code::PROTOCOL,
                    message: e.to_string(),
                }));
                break;
            }
            ReadStep::Frame(f, bytes) => {
                metrics.inc(&metrics.counters.net_frames_received);
                metrics.net_frame_bytes.observe(bytes as u64);
                match f {
                    Frame::Submit {
                        request_id,
                        endpoint,
                        deadline_us,
                        trace_id,
                        q,
                        bounds,
                        warm_start,
                    } => {
                        if !handle_submit(
                            shared,
                            slot,
                            &tx,
                            &pending,
                            request_id,
                            endpoint,
                            deadline_us,
                            trace_id,
                            q,
                            bounds,
                            warm_start,
                        ) {
                            break;
                        }
                    }
                    Frame::Cancel { request_id } => {
                        if let Some(h) = pending.lock().expect("pending map lock").get(&request_id)
                        {
                            h.cancel();
                        }
                    }
                    Frame::Goodbye => goodbye = true,
                    _ => {
                        metrics.inc(&metrics.counters.net_frame_decode_errors);
                        let _ = tx.send(WriterMsg::Frame(Frame::Error {
                            code: error_code::PROTOCOL,
                            message: "unexpected frame kind from a client".into(),
                        }));
                        break;
                    }
                }
            }
        }
    }

    let _ = tx.send(WriterMsg::Shutdown);
    drop(tx);
    let _ = writer.join();
}

/// Admits and submits one request. `false` tears the connection down
/// (fatal submit error); shed and per-request failures answer in-band
/// and return `true`.
#[allow(clippy::too_many_arguments)]
fn handle_submit(
    shared: &Arc<Shared>,
    slot: TenantSlot,
    tx: &Sender<WriterMsg>,
    pending: &Arc<Mutex<HashMap<u64, CancelHandle>>>,
    request_id: u64,
    endpoint: u32,
    deadline_us: u64,
    trace_id: u128,
    q: Option<Vec<f64>>,
    bounds: Option<(Vec<f64>, Vec<f64>)>,
    warm_start: Option<(Vec<f64>, Vec<f64>)>,
) -> bool {
    let Some(spec) = shared.endpoints.get(endpoint as usize) else {
        let _ = tx.send(WriterMsg::Frame(Frame::Error {
            code: error_code::UNKNOWN_ENDPOINT,
            message: format!("endpoint {endpoint} is not in the advertised catalog"),
        }));
        return false;
    };

    match shared.admission.admit(slot, Instant::now()) {
        mib_serve::Verdict::Admit => {}
        mib_serve::Verdict::RateLimited { retry_after } => {
            shed_trace(shared, trace_id, "rate_limited");
            let _ = tx.send(WriterMsg::Frame(Frame::Shed {
                request_id,
                reason: ShedReason::RateLimited,
                depth: 0,
                capacity: 0,
                retry_after_us: duration_us(retry_after),
            }));
            return true;
        }
        mib_serve::Verdict::OverShare { retry_after } => {
            shed_trace(shared, trace_id, "over_share");
            let _ = tx.send(WriterMsg::Frame(Frame::Shed {
                request_id,
                reason: ShedReason::OverShare,
                depth: 0,
                capacity: 0,
                retry_after_us: duration_us(retry_after),
            }));
            return true;
        }
    }

    let request = Request {
        q,
        bounds,
        deadline: (deadline_us > 0).then(|| Duration::from_micros(deadline_us)),
        warm_start,
        trace_id,
    };
    let submitted = match spec.target {
        EndpointTarget::Tenant(id) => shared.qp.submit(id, request),
        EndpointTarget::Portfolio(id) => shared.qp.submit_routed(id, request),
    };
    match submitted {
        Ok(ticket) => {
            pending
                .lock()
                .expect("pending map lock")
                .insert(request_id, ticket.cancel_handle());
            let tx = tx.clone();
            let pending = Arc::clone(pending);
            ticket.on_ready(move |response| {
                // Queue the answer BEFORE retiring the id: the Goodbye
                // path treats an empty pending map as "all answers are
                // ordered ahead of the Goodbye frame".
                let _ = tx.send(WriterMsg::Reply(request_id, response));
                pending
                    .lock()
                    .expect("pending map lock")
                    .remove(&request_id);
            });
            true
        }
        Err(SubmitError::QueueFull { depth, capacity }) => {
            let now = Instant::now();
            shared.admission.note_queue_full(slot, now);
            let mean_us = shared.metrics.service.mean();
            let retry = queue_full_retry_after(
                depth,
                shared.qp.config().workers_per_shard,
                Duration::from_micros(mean_us as u64),
            );
            let _ = tx.send(WriterMsg::Frame(Frame::Shed {
                request_id,
                reason: ShedReason::QueueFull,
                depth: u32::try_from(depth).unwrap_or(u32::MAX),
                capacity: u32::try_from(capacity).unwrap_or(u32::MAX),
                retry_after_us: duration_us(retry),
            }));
            true
        }
        Err(e) => {
            let _ = tx.send(WriterMsg::Frame(Frame::Error {
                code: error_code::SHUTTING_DOWN,
                message: e.to_string(),
            }));
            false
        }
    }
}

fn writer_loop(mut out: TcpStream, rx: &Receiver<WriterMsg>, metrics: &Metrics) {
    let mut scratch = Vec::new();
    loop {
        let frame = match rx.recv() {
            Ok(WriterMsg::Reply(request_id, response)) => Frame::Response {
                request_id,
                reply: wire_reply(&response),
            },
            Ok(WriterMsg::Frame(f)) => f,
            Ok(WriterMsg::Shutdown) | Err(_) => break,
        };
        scratch.clear();
        frame::encode(&frame, &mut scratch);
        if out.write_all(&scratch).is_err() {
            // The client is gone; drain silently so tickets can retire.
            continue;
        }
        metrics.inc(&metrics.counters.net_frames_sent);
        metrics.net_frame_bytes.observe((scratch.len() - 4) as u64);
    }
    let _ = out.flush();
}

/// Best-effort synchronous send on the reader thread (handshake and
/// refusal paths, before a writer exists).
fn send_direct(stream: &mut TcpStream, frame: &Frame, metrics: &Metrics) {
    let bytes = encode_to_vec(frame);
    if stream.write_all(&bytes).is_ok() {
        metrics.inc(&metrics.counters.net_frames_sent);
        metrics.net_frame_bytes.observe((bytes.len() - 4) as u64);
    }
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Marks a front-door admission rejection in the observability plane:
/// the tail sampler retains a synthetic "shed" span under the client's
/// trace id so `/trace/<id>` explains requests that never reached a
/// queue. Free when the obs plane is disabled.
fn shed_trace(shared: &Arc<Shared>, trace_id: u128, reason: &'static str) {
    let obs = shared.qp.obs();
    if obs.is_active() {
        obs.record_shed(trace_id, reason, Instant::now());
    }
}

/// Converts a serve [`Response`] into its wire form. Solution vectors
/// and the objective cross as raw bits — bitwise exact.
pub fn wire_reply(response: &Response) -> WireReply {
    let (code, iterations, obj_val, x, y, message) = match &response.outcome {
        Outcome::Finished(r) => {
            let code = match r.status {
                Status::Solved => ReplyCode::Solved,
                Status::MaxIterations => ReplyCode::MaxIterations,
                Status::PrimalInfeasible => ReplyCode::PrimalInfeasible,
                Status::DualInfeasible => ReplyCode::DualInfeasible,
                Status::TimedOut => ReplyCode::TimedOut,
                Status::Cancelled => ReplyCode::Cancelled,
            };
            (
                code,
                u32::try_from(r.iterations).unwrap_or(u32::MAX),
                r.obj_val,
                r.x.clone(),
                r.y.clone(),
                String::new(),
            )
        }
        Outcome::Expired => (
            ReplyCode::Expired,
            0,
            f64::NAN,
            vec![],
            vec![],
            String::new(),
        ),
        Outcome::Cancelled => (
            ReplyCode::CancelledQueued,
            0,
            f64::NAN,
            vec![],
            vec![],
            String::new(),
        ),
        Outcome::Failed(e) => (
            ReplyCode::Failed,
            0,
            f64::NAN,
            vec![],
            vec![],
            e.to_string(),
        ),
    };
    WireReply {
        code,
        iterations,
        obj_val,
        queue_wait_us: duration_us(response.queue_wait),
        service_us: duration_us(response.service_time),
        batch_size: u32::try_from(response.batch_size).unwrap_or(u32::MAX),
        x,
        y,
        message,
    }
}
