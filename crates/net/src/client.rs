//! A blocking protocol client: handshake on the caller thread, then a
//! reader thread demultiplexing server frames into an event channel.
//!
//! Submissions are written on the caller's thread (cheap: one
//! `write_all` of an encoded frame); answers — responses, sheds,
//! errors, the Goodbye — arrive as [`ClientEvent`]s on the channel
//! returned by [`NetClient::events`], keyed by the client-assigned
//! request id. This mirrors the server's demux design: no thread per
//! request, any number of requests in flight.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{self, Receiver};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::frame::{
    self, encode_to_vec, error_code, EndpointInfo, Frame, FrameReader, ShedReason, WireReply,
    DEFAULT_MAX_FRAME_BYTES, MIN_VERSION, VERSION,
};

/// One server-to-client event, demultiplexed by the reader thread.
#[derive(Debug, Clone)]
pub enum ClientEvent {
    /// A finished solve (or queued-expiry/cancel/failure) answer.
    Reply {
        /// The id the submission carried.
        request_id: u64,
        /// The answer.
        reply: WireReply,
    },
    /// The request was shed at admission; retry after the hint.
    Shed {
        /// The id the submission carried.
        request_id: u64,
        /// Which admission stage shed it.
        reason: ShedReason,
        /// Queue depth at rejection (queue-full sheds).
        depth: u32,
        /// Queue capacity (queue-full sheds).
        capacity: u32,
        /// Suggested backoff, µs.
        retry_after_us: u64,
    },
    /// Connection-level error from the server; the connection is dead.
    Error {
        /// One of [`frame::error_code`].
        code: u8,
        /// Human-readable detail.
        message: String,
    },
    /// The server confirmed the Goodbye: every answer was delivered.
    Goodbye,
    /// The socket closed (normally after a Goodbye, abnormally
    /// otherwise). Always the final event.
    Disconnected,
}

/// A connected, authenticated protocol client.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    tenant: String,
    endpoints: Vec<EndpointInfo>,
    version: u16,
    events: Receiver<ClientEvent>,
    reader: Option<JoinHandle<()>>,
    scratch: Vec<u8>,
}

impl NetClient {
    /// Connects and runs the Hello/HelloAck handshake with the default
    /// frame-size limit.
    ///
    /// # Errors
    ///
    /// Socket errors, an authentication refusal, or a malformed
    /// handshake all surface as `io::Error`.
    pub fn connect<A: ToSocketAddrs>(addr: A, token: &[u8]) -> io::Result<NetClient> {
        NetClient::connect_with(addr, token, DEFAULT_MAX_FRAME_BYTES)
    }

    /// As [`connect`](NetClient::connect) with an explicit frame cap.
    ///
    /// # Errors
    ///
    /// As [`connect`](NetClient::connect).
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        token: &[u8],
        max_frame_bytes: usize,
    ) -> io::Result<NetClient> {
        // Offer the newest protocol first; when the server caps its
        // dialect below the offer it refuses with a VERSION error, and
        // the client reconnects offering each older version in turn.
        // One extra round trip per downgrade, only on the mixed-fleet
        // path — steady state is a single handshake.
        for offer in (MIN_VERSION..=VERSION).rev() {
            match NetClient::handshake(&addr, token, max_frame_bytes, offer) {
                Ok(client) => return Ok(client),
                Err(Handshake::VersionRefused) if offer > MIN_VERSION => {}
                Err(Handshake::VersionRefused) => {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionRefused,
                        "server refused every protocol version this client speaks",
                    ));
                }
                Err(Handshake::Fatal(e)) => return Err(e),
            }
        }
        unreachable!("the version loop always returns")
    }

    fn handshake<A: ToSocketAddrs>(
        addr: &A,
        token: &[u8],
        max_frame_bytes: usize,
        offer: u16,
    ) -> Result<NetClient, Handshake> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.write_all(&encode_to_vec(&Frame::Hello {
            version: offer,
            token: token.to_vec(),
        }))?;

        // Blocking handshake on the caller thread: the first frame back
        // decides whether this connection exists at all.
        let mut reader = FrameReader::new(max_frame_bytes);
        reader.set_version(offer);
        let mut buf = [0u8; 4096];
        let (tenant, endpoints) = loop {
            if let Some(f) = reader
                .next_frame()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
            {
                match f {
                    Frame::HelloAck { tenant, endpoints } => break (tenant, endpoints),
                    Frame::Error { code, message } => {
                        if code == error_code::VERSION {
                            return Err(Handshake::VersionRefused);
                        }
                        return Err(io::Error::new(
                            io::ErrorKind::ConnectionRefused,
                            format!("server refused the connection (code {code}): {message}"),
                        )
                        .into());
                    }
                    other => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("expected a HelloAck, got {other:?}"),
                        )
                        .into());
                    }
                }
            }
            let n = stream.read(&mut buf)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection during the handshake",
                )
                .into());
            }
            reader.extend(&buf[..n]);
        };

        let (tx, events) = mpsc::channel();
        let reader_handle = {
            let stream = stream.try_clone()?;
            thread::Builder::new()
                .name("mib-net-client-read".into())
                .spawn(move || {
                    let mut stream = stream;
                    let mut buf = vec![0u8; 256 * 1024];
                    loop {
                        match reader.next_frame() {
                            Ok(Some(f)) => {
                                let (event, done) = demux(f);
                                if let Some(event) = event {
                                    if tx.send(event).is_err() {
                                        return;
                                    }
                                }
                                if done {
                                    let _ = tx.send(ClientEvent::Disconnected);
                                    return;
                                }
                                continue;
                            }
                            Ok(None) => {}
                            Err(_) => {
                                let _ = tx.send(ClientEvent::Disconnected);
                                return;
                            }
                        }
                        match stream.read(&mut buf) {
                            Ok(0) | Err(_) => {
                                let _ = tx.send(ClientEvent::Disconnected);
                                return;
                            }
                            Ok(n) => reader.extend(&buf[..n]),
                        }
                    }
                })
                .expect("spawn client reader thread")
        };

        Ok(NetClient {
            stream,
            tenant,
            endpoints,
            version: offer,
            events,
            reader: Some(reader_handle),
            scratch: Vec::new(),
        })
    }

    /// The tenant label the token authenticated as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The wire protocol version both sides agreed on.
    pub fn negotiated_version(&self) -> u16 {
        self.version
    }

    /// The endpoint catalog the server advertised.
    pub fn endpoints(&self) -> &[EndpointInfo] {
        &self.endpoints
    }

    /// Sends a raw frame.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send(&mut self, frame: &Frame) -> io::Result<()> {
        self.scratch.clear();
        frame::encode_versioned(frame, self.version, &mut self.scratch);
        self.stream.write_all(&self.scratch)
    }

    /// Submits a parametric solve request under the given id.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    #[allow(clippy::too_many_arguments)]
    pub fn submit(
        &mut self,
        request_id: u64,
        endpoint: u32,
        deadline: Option<Duration>,
        q: Option<Vec<f64>>,
        bounds: Option<(Vec<f64>, Vec<f64>)>,
        warm_start: Option<(Vec<f64>, Vec<f64>)>,
    ) -> io::Result<()> {
        self.submit_traced(request_id, endpoint, deadline, 0, q, bounds, warm_start)
    }

    /// As [`submit`](NetClient::submit), stamping the request with a
    /// 128-bit trace id so server-side spans (queue wait, solve phases,
    /// kernels) can be correlated with this client's view of the
    /// request. A zero id means "untraced"; on a connection negotiated
    /// at a pre-trace protocol version the id is silently dropped.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_traced(
        &mut self,
        request_id: u64,
        endpoint: u32,
        deadline: Option<Duration>,
        trace_id: u128,
        q: Option<Vec<f64>>,
        bounds: Option<(Vec<f64>, Vec<f64>)>,
        warm_start: Option<(Vec<f64>, Vec<f64>)>,
    ) -> io::Result<()> {
        self.send(&Frame::Submit {
            request_id,
            endpoint,
            deadline_us: deadline.map_or(0, |d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX)),
            q,
            bounds,
            warm_start,
            trace_id,
        })
    }

    /// Requests cooperative cancellation of an in-flight submission.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn cancel(&mut self, request_id: u64) -> io::Result<()> {
        self.send(&Frame::Cancel { request_id })
    }

    /// Announces that no more requests are coming. The server answers
    /// everything in flight, then sends [`ClientEvent::Goodbye`].
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn goodbye(&mut self) -> io::Result<()> {
        self.send(&Frame::Goodbye)
    }

    /// The demultiplexed server-event channel.
    pub fn events(&self) -> &Receiver<ClientEvent> {
        &self.events
    }

    /// Waits up to `timeout` for the next event.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<ClientEvent> {
        self.events.recv_timeout(timeout).ok()
    }
}

impl Drop for NetClient {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

/// Internal handshake outcome: a version refusal is retryable at a
/// lower offer, everything else aborts the connect.
enum Handshake {
    VersionRefused,
    Fatal(io::Error),
}

impl From<io::Error> for Handshake {
    fn from(e: io::Error) -> Handshake {
        Handshake::Fatal(e)
    }
}

/// Maps a server frame to its event; the bool is "stream finished".
fn demux(frame: Frame) -> (Option<ClientEvent>, bool) {
    match frame {
        Frame::Response { request_id, reply } => {
            (Some(ClientEvent::Reply { request_id, reply }), false)
        }
        Frame::Shed {
            request_id,
            reason,
            depth,
            capacity,
            retry_after_us,
        } => (
            Some(ClientEvent::Shed {
                request_id,
                reason,
                depth,
                capacity,
                retry_after_us,
            }),
            false,
        ),
        Frame::Error { code, message } => (Some(ClientEvent::Error { code, message }), true),
        Frame::Goodbye => (Some(ClientEvent::Goodbye), true),
        // Anything else from a server is a protocol violation; treat it
        // as the end of the stream.
        _ => (None, true),
    }
}
