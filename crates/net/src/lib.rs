//! **mib-net** — the wire-protocol front-end of the MIB serving stack.
//!
//! [`mib_serve`] is an in-process runtime: callers hold a
//! [`QpServer`](mib_serve::QpServer) and submit [`Request`]s directly.
//! This crate puts a network in between — a length-prefixed binary TCP
//! protocol (see [`frame`]) multiplexing any number of remote clients
//! onto one `QpServer`, built entirely on std threads and
//! blocking-with-timeout sockets (no async runtime):
//!
//! * [`NetServer`] — acceptor + per-connection reader/writer threads,
//!   tenant-token authentication, deadline propagation, and response
//!   demultiplexing by client-assigned request id (a ticket callback
//!   forwards each finished answer to the connection's writer — no
//!   thread ever parks on an individual solve);
//! * **admission control** in front of the bounded shard queues: every
//!   submit passes its tenant's token bucket and, under congestion, a
//!   weighted fair-share check
//!   ([`AdmissionController`](mib_serve::AdmissionController)); every
//!   rejection — including a full shard queue — is answered with an
//!   explicit [`Frame::Shed`] carrying the observed depth, capacity and
//!   a retry-after hint. A client never sees a silent drop or a hung
//!   connection;
//! * [`NetClient`] — blocking handshake, then an event channel of
//!   demultiplexed [`ClientEvent`]s, supporting any number of in-flight
//!   requests per connection.
//!
//! All floating-point payloads travel as raw IEEE 754 bits, so a served
//! answer is **bitwise identical** to the same solve run in process —
//! the property the `load_bench` harness verifies over real sockets at
//! million-request scale.
//!
//! [`Request`]: mib_serve::Request

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod server;

pub use client::{ClientEvent, NetClient};
pub use frame::{
    error_code, EndpointInfo, Frame, FrameError, FrameReader, ReplyCode, ShedReason, WireReply,
    DEFAULT_MAX_FRAME_BYTES, MAGIC, MIN_VERSION, VERSION,
};
pub use server::{wire_reply, EndpointSpec, EndpointTarget, NetConfig, NetServer, TenantAuth};
