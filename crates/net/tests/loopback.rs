//! End-to-end tests over a real loopback socket: handshake + auth,
//! bitwise answer parity with direct solves, routed endpoints,
//! rate-limit sheds, cancellation, the Goodbye drain protocol, and
//! clean teardown under garbage, oversized and unauthenticated input.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use mib_net::frame::{encode_to_vec, error_code, Frame, FrameReader, DEFAULT_MAX_FRAME_BYTES};
use mib_net::{
    ClientEvent, EndpointSpec, EndpointTarget, NetClient, NetConfig, NetServer, ReplyCode,
    ShedReason, TenantAuth,
};
use mib_problems::{instance, Domain};
use mib_qp::{Algorithm, Settings, Solver};
use mib_serve::{QpServer, Request, ServeConfig, TenantPolicy};

const TOKEN_A: &[u8] = b"tenant-a-token";
const TOKEN_B: &[u8] = b"tenant-b-token";

/// A server with one direct endpoint (Portfolio domain) and one routed
/// endpoint (same problem under both algorithms), two tenants.
fn start_server(policy_a: TenantPolicy) -> (NetServer, Solver) {
    let qp = Arc::new(QpServer::new(ServeConfig::default()));
    let spec = instance(Domain::Portfolio, 0);
    let template = Solver::new(spec.problem.clone(), Settings::default()).unwrap();
    let tenant = qp
        .register(spec.problem.clone(), Settings::default())
        .unwrap();
    let portfolio = qp
        .register_portfolio(
            &spec.problem,
            vec![
                Settings {
                    algorithm: Algorithm::Admm,
                    ..Settings::default()
                },
                Settings {
                    algorithm: Algorithm::Pdqp,
                    ..Settings::default()
                },
            ],
        )
        .unwrap();
    let endpoints = vec![
        EndpointSpec {
            target: EndpointTarget::Tenant(tenant),
            name: "portfolio-direct".into(),
            num_vars: spec.problem.num_vars(),
            num_constraints: spec.problem.num_constraints(),
        },
        EndpointSpec {
            target: EndpointTarget::Portfolio(portfolio),
            name: "portfolio-routed".into(),
            num_vars: spec.problem.num_vars(),
            num_constraints: spec.problem.num_constraints(),
        },
    ];
    let auth = vec![
        TenantAuth {
            token: TOKEN_A.to_vec(),
            label: "tenant-a".into(),
            policy: policy_a,
        },
        TenantAuth {
            token: TOKEN_B.to_vec(),
            label: "tenant-b".into(),
            policy: TenantPolicy::default(),
        },
    ];
    let server = NetServer::bind("127.0.0.1:0", qp, endpoints, auth, NetConfig::default()).unwrap();
    (server, template)
}

fn direct_reference(template: &Solver, request: &Request) -> mib_qp::SolveResult {
    let mut solver = template.clone();
    let problem = solver.problem();
    let q = request.q.clone().unwrap_or_else(|| problem.q().to_vec());
    let (l, u) = request
        .bounds
        .clone()
        .unwrap_or_else(|| (problem.l().to_vec(), problem.u().to_vec()));
    solver.update_q(&q).unwrap();
    solver.update_bounds(&l, &u).unwrap();
    solver.reset();
    solver.solve()
}

#[test]
fn served_answers_over_the_wire_are_bitwise_equal_to_direct_solves() {
    let (server, template) = start_server(TenantPolicy::default());
    let mut client = NetClient::connect(server.local_addr(), TOKEN_A).unwrap();
    assert_eq!(client.tenant(), "tenant-a");
    assert_eq!(client.endpoints().len(), 2);
    assert!(!client.endpoints()[0].routed);
    assert!(client.endpoints()[1].routed);

    let n = client.endpoints()[0].num_vars as usize;
    let base_q: Vec<f64> = template.problem().q().to_vec();
    assert_eq!(base_q.len(), n);

    // A batch of perturbed-q requests, all in flight at once.
    let mut requests = Vec::new();
    for k in 0..6u64 {
        let mut q = base_q.clone();
        for (i, qi) in q.iter_mut().enumerate() {
            *qi += 0.01 * (k as f64) * ((i % 5) as f64 - 2.0);
        }
        requests.push(Request::with_q(q));
    }
    for (k, request) in requests.iter().enumerate() {
        client
            .submit(k as u64, 0, None, request.q.clone(), None, None)
            .unwrap();
    }

    let mut replies = std::collections::HashMap::new();
    while replies.len() < requests.len() {
        match client.recv_timeout(Duration::from_secs(30)) {
            Some(ClientEvent::Reply { request_id, reply }) => {
                replies.insert(request_id, reply);
            }
            other => panic!("expected a reply, got {other:?}"),
        }
    }

    for (k, request) in requests.iter().enumerate() {
        let reply = &replies[&(k as u64)];
        let reference = direct_reference(&template, request);
        assert_eq!(reply.code, ReplyCode::Solved, "request {k}");
        assert_eq!(reply.iterations as usize, reference.iterations);
        assert_eq!(
            reply.obj_val.to_bits(),
            reference.obj_val.to_bits(),
            "objective of request {k} must cross the wire bitwise"
        );
        assert!(
            reply
                .x
                .iter()
                .zip(&reference.x)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "x of request {k} must be bitwise equal to the direct solve"
        );
        assert!(
            reply
                .y
                .iter()
                .zip(&reference.y)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "y of request {k} must be bitwise equal to the direct solve"
        );
        assert!(reply.batch_size >= 1);
    }
}

#[test]
fn goodbye_drains_inflight_answers_then_confirms() {
    let (server, _template) = start_server(TenantPolicy::default());
    let mut client = NetClient::connect(server.local_addr(), TOKEN_B).unwrap();
    for k in 0..4u64 {
        client.submit(k, 1, None, None, None, None).unwrap();
    }
    client.goodbye().unwrap();

    let mut replies = 0;
    loop {
        match client.recv_timeout(Duration::from_secs(30)) {
            Some(ClientEvent::Reply { reply, .. }) => {
                assert_eq!(reply.code, ReplyCode::Solved);
                replies += 1;
            }
            Some(ClientEvent::Goodbye) => break,
            other => panic!("expected reply/goodbye, got {other:?}"),
        }
    }
    // Every answer must be ordered before the Goodbye.
    assert_eq!(replies, 4);
    assert!(matches!(
        client.recv_timeout(Duration::from_secs(10)),
        Some(ClientEvent::Disconnected)
    ));
}

#[test]
fn rate_limited_tenants_get_explicit_shed_frames() {
    // 1 token, glacial refill: the first submit is admitted, the rest
    // are shed with a RateLimited reason and a positive retry hint.
    let (server, _template) = start_server(TenantPolicy {
        rate_per_sec: 0.001,
        burst: 1.0,
        weight: 1.0,
    });
    let mut client = NetClient::connect(server.local_addr(), TOKEN_A).unwrap();
    for k in 0..5u64 {
        client.submit(k, 0, None, None, None, None).unwrap();
    }
    let (mut replies, mut sheds) = (0, 0);
    for _ in 0..5 {
        match client.recv_timeout(Duration::from_secs(30)) {
            Some(ClientEvent::Reply { .. }) => replies += 1,
            Some(ClientEvent::Shed {
                reason,
                retry_after_us,
                ..
            }) => {
                assert_eq!(reason, ShedReason::RateLimited);
                assert!(retry_after_us > 0, "shed frames carry a retry hint");
                sheds += 1;
            }
            other => panic!("expected reply/shed, got {other:?}"),
        }
    }
    assert_eq!(replies, 1, "exactly the burst is admitted");
    assert_eq!(sheds, 4, "everything else is shed explicitly");

    let metrics = server.qp().metrics().render();
    assert!(
        metrics.contains("mib_serve_admission_shed_rate_limited_total{tenant=\"tenant-a\"} 4"),
        "per-tenant shed counters must be rendered:\n{metrics}"
    );
}

#[test]
fn cancel_frames_reach_inflight_requests() {
    let (server, _template) = start_server(TenantPolicy::default());
    let mut client = NetClient::connect(server.local_addr(), TOKEN_B).unwrap();
    // Enough submissions that some are still queued when the cancels
    // land; every one of them must still be answered (cancelled,
    // cancelled-in-queue, or already solved — never silence).
    for k in 0..8u64 {
        client.submit(k, 0, None, None, None, None).unwrap();
    }
    for k in 0..8u64 {
        client.cancel(k).unwrap();
    }
    for _ in 0..8 {
        match client.recv_timeout(Duration::from_secs(30)) {
            Some(ClientEvent::Reply { reply, .. }) => {
                assert!(
                    matches!(
                        reply.code,
                        ReplyCode::Solved | ReplyCode::Cancelled | ReplyCode::CancelledQueued
                    ),
                    "unexpected outcome {:?}",
                    reply.code
                );
            }
            other => panic!("expected a reply, got {other:?}"),
        }
    }
}

#[test]
fn deadline_propagates_to_queued_expiry() {
    let (server, _template) = start_server(TenantPolicy::default());
    let mut client = NetClient::connect(server.local_addr(), TOKEN_B).unwrap();
    // An already-expired deadline: answered as Expired (if it was still
    // queued) or TimedOut (if a worker picked it up first) — never hung.
    client
        .submit(0, 0, Some(Duration::from_micros(1)), None, None, None)
        .unwrap();
    match client.recv_timeout(Duration::from_secs(30)) {
        Some(ClientEvent::Reply { reply, .. }) => assert!(
            matches!(
                reply.code,
                ReplyCode::Expired | ReplyCode::TimedOut | ReplyCode::Solved
            ),
            "unexpected outcome {:?}",
            reply.code
        ),
        other => panic!("expected a reply, got {other:?}"),
    }
}

#[test]
fn wrong_token_is_refused_with_an_auth_error() {
    let (server, _template) = start_server(TenantPolicy::default());
    let err = NetClient::connect(server.local_addr(), b"intruder").unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
    assert!(err.to_string().contains("unknown tenant token"), "{err}");
    assert!(
        server
            .qp()
            .metrics()
            .counters
            .net_auth_failures
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
}

#[test]
fn garbage_bytes_get_an_error_frame_and_a_clean_close() {
    let (server, _template) = start_server(TenantPolicy::default());
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    // A plausible length header followed by an unknown kind byte.
    raw.write_all(&12u32.to_le_bytes()).unwrap();
    raw.write_all(&[0xEE; 12]).unwrap();

    let mut reader = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
    let mut buf = [0u8; 4096];
    let mut saw_error = false;
    loop {
        let n = raw.read(&mut buf).unwrap_or(0);
        if n == 0 {
            break; // server closed: clean teardown
        }
        reader.extend(&buf[..n]);
        while let Ok(Some(f)) = reader.next_frame() {
            if let Frame::Error { code, .. } = f {
                assert_eq!(code, error_code::PROTOCOL);
                saw_error = true;
            }
        }
    }
    assert!(saw_error, "the server must explain before closing");
    assert!(
        server
            .qp()
            .metrics()
            .counters
            .net_frame_decode_errors
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
}

#[test]
fn oversized_frames_are_rejected_without_buffering() {
    let (server, _template) = start_server(TenantPolicy::default());
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    // Claim a body far beyond the server's limit; send nothing else.
    raw.write_all(&u32::MAX.to_le_bytes()).unwrap();

    let mut reader = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
    let mut buf = [0u8; 4096];
    let mut saw_error = false;
    loop {
        let n = raw.read(&mut buf).unwrap_or(0);
        if n == 0 {
            break;
        }
        reader.extend(&buf[..n]);
        while let Ok(Some(f)) = reader.next_frame() {
            if matches!(f, Frame::Error { .. }) {
                saw_error = true;
            }
        }
    }
    assert!(saw_error, "oversized frames must be refused explicitly");
}

#[test]
fn submits_before_hello_are_refused() {
    let (server, _template) = start_server(TenantPolicy::default());
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(&encode_to_vec(&Frame::Submit {
        request_id: 1,
        endpoint: 0,
        deadline_us: 0,
        trace_id: 0,
        q: None,
        bounds: None,
        warm_start: None,
    }))
    .unwrap();

    let mut reader = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
    let mut buf = [0u8; 4096];
    let mut code_seen = None;
    loop {
        let n = raw.read(&mut buf).unwrap_or(0);
        if n == 0 {
            break;
        }
        reader.extend(&buf[..n]);
        while let Ok(Some(f)) = reader.next_frame() {
            if let Frame::Error { code, .. } = f {
                code_seen = Some(code);
            }
        }
    }
    assert_eq!(code_seen, Some(error_code::EXPECTED_HELLO));
}

/// As [`start_server`] with an explicit [`NetConfig`] and serve config,
/// for the negotiation/observability matrix below.
fn start_server_cfg(serve: ServeConfig, cfg: NetConfig) -> NetServer {
    let qp = Arc::new(QpServer::new(serve));
    let spec = instance(Domain::Portfolio, 0);
    let tenant = qp
        .register(spec.problem.clone(), Settings::default())
        .unwrap();
    let endpoints = vec![EndpointSpec {
        target: EndpointTarget::Tenant(tenant),
        name: "portfolio-direct".into(),
        num_vars: spec.problem.num_vars(),
        num_constraints: spec.problem.num_constraints(),
    }];
    let auth = vec![TenantAuth {
        token: TOKEN_A.to_vec(),
        label: "tenant-a".into(),
        policy: TenantPolicy::default(),
    }];
    NetServer::bind("127.0.0.1:0", qp, endpoints, auth, cfg).unwrap()
}

fn wait_for_reply(client: &mut NetClient, request_id: u64) -> ReplyCode {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while std::time::Instant::now() < deadline {
        match client.recv_timeout(Duration::from_secs(1)) {
            Some(ClientEvent::Reply {
                request_id: id,
                reply,
            }) if id == request_id => {
                return reply.code;
            }
            Some(_) | None => {}
        }
    }
    panic!("no reply for request {request_id}");
}

#[test]
fn old_server_downgrades_new_clients_without_breaking_them() {
    // A server pinned to wire v1 refuses the client's v2 offer; the
    // client transparently reconnects at v1 and everything — including
    // a *traced* submit, whose id silently stays client-side — works.
    let server = start_server_cfg(
        ServeConfig::default(),
        NetConfig {
            max_version: 1,
            ..NetConfig::default()
        },
    );
    let mut client = NetClient::connect(server.local_addr(), TOKEN_A).unwrap();
    assert_eq!(client.negotiated_version(), 1);
    client
        .submit_traced(7, 0, None, 0xfeed_f00d_dead_beef, None, None, None)
        .unwrap();
    assert_eq!(wait_for_reply(&mut client, 7), ReplyCode::Solved);
}

#[test]
fn matched_versions_negotiate_the_newest_and_carry_trace_ids() {
    // v2 client against a v2 server: one handshake, and the Submit's
    // trace id crosses the wire into the serving runtime's request.
    let server = start_server_cfg(
        ServeConfig {
            obs: mib_serve::ObsConfig {
                enabled: true,
                // Retain every finished request: anything slower than
                // 0us is "slow".
                slow_us: 0,
                ..mib_serve::ObsConfig::default()
            },
            ..ServeConfig::default()
        },
        NetConfig::default(),
    );
    let mut client = NetClient::connect(server.local_addr(), TOKEN_A).unwrap();
    assert_eq!(client.negotiated_version(), mib_net::VERSION);
    let trace_id: u128 = (0xabad_1dea_u128 << 64) | 0x0ddc_0ffe;
    client
        .submit_traced(9, 0, None, trace_id, None, None, None)
        .unwrap();
    assert_eq!(wait_for_reply(&mut client, 9), ReplyCode::Solved);
    let flight = server.qp().obs();
    let record = flight
        .flight()
        .lookup(trace_id)
        .expect("traced request retained under the client-supplied id");
    assert!(
        record.records.iter().any(|r| matches!(
            &r.event,
            mib_trace::Event::Begin { name, .. } if *name == "solve_request"
        )),
        "flight record must contain the serve-side solve span"
    );
}

#[test]
fn admin_listener_rides_along_when_configured() {
    let server = start_server_cfg(
        ServeConfig {
            obs: mib_serve::ObsConfig {
                enabled: true,
                ..mib_serve::ObsConfig::default()
            },
            ..ServeConfig::default()
        },
        NetConfig {
            admin_addr: Some("127.0.0.1:0".into()),
            ..NetConfig::default()
        },
    );
    let admin = server.admin_addr().expect("admin plane is bound");
    let mut client = NetClient::connect(server.local_addr(), TOKEN_A).unwrap();
    client.submit(3, 0, None, None, None, None).unwrap();
    assert_eq!(wait_for_reply(&mut client, 3), ReplyCode::Solved);

    // The writer thread bumps its sent-counters *after* the socket
    // write, so the counter may trail the reply by a scheduler quantum;
    // scrape until the view settles.
    let mut matched = false;
    for _ in 0..100 {
        let (status, body) = mib_obs::http_get(admin, "/metrics").unwrap();
        assert_eq!(status, 200);
        if body == server.qp().metrics().render() {
            matched = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        matched,
        "admin scrape must converge to Metrics::render() verbatim"
    );
    let (status, body) = mib_obs::http_get(admin, "/healthz").unwrap();
    assert_eq!(status, 200, "healthy: {body}");
}

#[test]
fn shutdown_tears_connections_down_without_hanging() {
    let (mut server, _template) = start_server(TenantPolicy::default());
    let mut client = NetClient::connect(server.local_addr(), TOKEN_A).unwrap();
    client.submit(0, 0, None, None, None, None).unwrap();
    // The in-flight answer races the shutdown; both orders are fine as
    // long as the client observes a definite end of stream.
    server.shutdown();
    let mut disconnected = false;
    for _ in 0..4 {
        match client.recv_timeout(Duration::from_secs(10)) {
            Some(ClientEvent::Disconnected) | None => {
                disconnected = true;
                break;
            }
            Some(_) => {}
        }
    }
    assert!(disconnected, "shutdown must end the client stream");
}
