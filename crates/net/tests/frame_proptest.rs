//! Property tests of the frame codec: randomized round-trips through a
//! randomly torn byte stream, and rejection properties for hostile
//! headers.

use mib_net::frame::{
    decode_body, encode_to_vec, encode_versioned, Frame, FrameError, FrameReader, ShedReason,
    DEFAULT_MAX_FRAME_BYTES, MIN_VERSION, VERSION,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// An arbitrary payload vector whose values cover the full f64 bit
/// space (including NaNs, infinities and subnormals) by generating raw
/// bit patterns.
fn f64_bits_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    vec(0u64..u64::MAX, 0..max_len).prop_map(|bits| bits.into_iter().map(f64::from_bits).collect())
}

fn submit_frame() -> impl Strategy<Value = Frame> {
    // The vendored proptest implements tuple strategies up to arity 5;
    // nest pairs to stay under it.
    (
        (0u64..u64::MAX, 0u32..16, 0u64..10_000_000),
        (
            f64_bits_vec(40),
            (f64_bits_vec(20), f64_bits_vec(20)),
            0u32..8,
        ),
    )
        .prop_map(
            |((request_id, endpoint, deadline_us), (q, (l, u), mask))| Frame::Submit {
                request_id,
                endpoint,
                deadline_us,
                // Derive a nontrivial 128-bit id from the other draws so
                // both halves of the wide word get exercised.
                trace_id: if mask & 4 != 0 {
                    (u128::from(request_id) << 64) | u128::from(deadline_us ^ 0x5a5a)
                } else {
                    0
                },
                q: (mask & 1 != 0).then_some(q),
                bounds: (mask & 2 != 0).then_some((l, u)),
                warm_start: None,
            },
        )
}

fn shed_frame() -> impl Strategy<Value = Frame> {
    (0u64..u64::MAX, 0u32..3, 0u32..1000, 0u64..5_000_000).prop_map(
        |(request_id, reason, depth, retry)| Frame::Shed {
            request_id,
            reason: match reason {
                0 => ShedReason::RateLimited,
                1 => ShedReason::OverShare,
                _ => ShedReason::QueueFull,
            },
            depth,
            capacity: depth.saturating_add(1),
            retry_after_us: retry,
        },
    )
}

/// Feeds `wire` to a reader in chunks whose sizes are drawn from
/// `cuts`, collecting every decoded frame.
fn feed_chunked(wire: &[u8], cuts: &[usize]) -> Vec<Frame> {
    let mut reader = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
    let mut seen = Vec::new();
    let mut pos = 0;
    let mut cut = 0;
    while pos < wire.len() {
        let step = (cuts[cut % cuts.len()] + 1).min(wire.len() - pos);
        cut += 1;
        reader.extend(&wire[pos..pos + step]);
        pos += step;
        while let Some(f) = reader.next_frame().expect("stream is well-formed") {
            seen.push(f);
        }
    }
    assert_eq!(reader.pending_bytes(), 0, "no residue after a whole stream");
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    /// Any sequence of frames, however the stream is torn into reads,
    /// reassembles to the identical sequence — compared on re-encoded
    /// bytes so NaN payloads are checked bitwise.
    fn torn_streams_round_trip_bitwise(
        frames in vec(submit_frame(), 1..8),
        extra in vec(shed_frame(), 0..4),
        cuts in vec(0usize..96, 1..12),
    ) {
        let mut all: Vec<Frame> = frames;
        all.extend(extra);
        all.push(Frame::Goodbye);
        let mut wire = Vec::new();
        for f in &all {
            wire.extend_from_slice(&encode_to_vec(f));
        }
        let seen = feed_chunked(&wire, &cuts);
        prop_assert_eq!(seen.len(), all.len());
        for (got, want) in seen.iter().zip(&all) {
            prop_assert_eq!(encode_to_vec(got), encode_to_vec(want));
        }
    }

    #[test]
    /// The torn-stream property holds at every negotiable wire version:
    /// a reader pinned to the connection's version reassembles the
    /// stream to frames that re-encode to the identical bytes at that
    /// version. (At v1 the trace id never crosses the wire, so the
    /// round-trip law is stated on re-encoded bytes, not field equality.)
    fn torn_streams_round_trip_at_every_version(
        version in MIN_VERSION..VERSION + 1,
        frames in vec(submit_frame(), 1..6),
        cuts in vec(0usize..96, 1..12),
    ) {
        let mut all: Vec<Frame> = frames;
        all.push(Frame::Goodbye);
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        for f in &all {
            scratch.clear();
            encode_versioned(f, version, &mut scratch);
            wire.extend_from_slice(&scratch);
        }
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
        reader.set_version(version);
        let mut seen = Vec::new();
        let mut pos = 0;
        let mut cut = 0;
        while pos < wire.len() {
            let step = (cuts[cut % cuts.len()] + 1).min(wire.len() - pos);
            cut += 1;
            reader.extend(&wire[pos..pos + step]);
            pos += step;
            while let Some(f) = reader.next_frame().expect("stream is well-formed") {
                seen.push(f);
            }
        }
        prop_assert_eq!(reader.pending_bytes(), 0);
        prop_assert_eq!(seen.len(), all.len());
        for (got, want) in seen.iter().zip(&all) {
            let mut a = Vec::new();
            let mut b = Vec::new();
            encode_versioned(got, version, &mut a);
            encode_versioned(want, version, &mut b);
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    /// A length header beyond the limit is rejected no matter what
    /// bytes follow, and before the body arrives.
    fn oversized_headers_always_reject(
        excess in 1usize..1_000_000,
        limit in 64usize..4096,
    ) {
        let mut reader = FrameReader::new(limit);
        let len = u32::try_from(limit + excess).unwrap_or(u32::MAX);
        reader.extend(&len.to_le_bytes());
        prop_assert_eq!(
            reader.next_frame(),
            Err(FrameError::Oversized { len: len as usize, max: limit })
        );
    }

    #[test]
    /// Truncating a well-formed body anywhere strictly inside it never
    /// panics and never yields a frame: it is Malformed (or, for a
    /// truncated Hello, possibly a magic/version error — but never Ok).
    fn truncated_bodies_never_decode(
        frame in submit_frame(),
        keep_frac in 0usize..1000,
    ) {
        let wire = encode_to_vec(&frame);
        let body = &wire[4..];
        if body.len() > 1 {
            let keep = 1 + keep_frac * (body.len() - 1) / 1000;
            if keep < body.len() {
                prop_assert!(decode_body(&body[..keep]).is_err());
            }
        }
    }

    #[test]
    /// Flipping the kind byte to garbage is always caught.
    fn unknown_kinds_reject(kind in 8u8..255, id in 0u64..u64::MAX) {
        let mut body = vec![kind, 0];
        body.extend_from_slice(&id.to_le_bytes());
        prop_assert_eq!(decode_body(&body), Err(FrameError::UnknownKind(kind)));
    }

    #[test]
    /// Hello frames with a corrupted version word are rejected as
    /// BadVersion for every value above the newest speakable version.
    fn wrong_versions_reject(version in (VERSION + 1)..u16::MAX) {
        let mut wire = encode_to_vec(&Frame::Hello { version: VERSION, token: vec![7; 3] });
        wire[18..20].copy_from_slice(&version.to_le_bytes());
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
        reader.extend(&wire);
        prop_assert_eq!(
            reader.next_frame(),
            Err(FrameError::BadVersion { got: version })
        );
    }
}
