//! **MIB** — a from-scratch Rust reproduction of *"Multi-Issue Butterfly
//! Architecture for Sparse Convex Quadratic Programming"* (MICRO 2024).
//!
//! This façade crate re-exports the whole stack; see the individual crates
//! for the deep documentation:
//!
//! * [`sparse`] — sparse linear algebra (CSC/CSR, orderings, elimination
//!   trees, LDLᵀ),
//! * [`qp`] — the OSQP-style ADMM solver (direct and indirect variants),
//! * [`core`] — the cycle-accurate Multi-Issue Butterfly machine model,
//! * [`compiler`] — sparsity-pattern-driven network-instruction generation
//!   and first-fit multi-issue scheduling,
//! * [`verify`] — static dataflow verifier and lint pass certifying
//!   compiled schedules hazard-free without executing them,
//! * [`problems`] — the five-domain benchmark generators,
//! * [`platforms`] — reference CPU/GPU/RSQP performance models,
//! * [`serve`] — the multi-tenant serving runtime (pattern-sharded warm
//!   solver pools, micro-batching, deadlines, backpressure, metrics),
//! * [`net`] — the wire-protocol front-end (length-prefixed binary TCP
//!   frames, tenant auth, admission-controlled load shedding).
//!
//! Runnable entry points live in `examples/` (quickstart, portfolio
//! backtest, closed-loop MPC, Lasso path, on-machine acceleration) and in
//! the `mib-bench` crate's binaries, which regenerate every figure and
//! table of the paper (see DESIGN.md and EXPERIMENTS.md).

pub use mib_compiler as compiler;
pub use mib_core as core;
pub use mib_net as net;
pub use mib_obs as obs;
pub use mib_platforms as platforms;
pub use mib_problems as problems;
pub use mib_qp as qp;
pub use mib_serve as serve;
pub use mib_sparse as sparse;
pub use mib_trace as trace;
pub use mib_verify as verify;
