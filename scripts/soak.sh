#!/usr/bin/env bash
# Serving-runtime soak: repeats the multi-threaded soak test to shake out
# scheduling-dependent bugs, then replays the full 600-request
# serve_bench trace (which regenerates results/serve_trace.txt).
#
# Usage: scripts/soak.sh [iterations]   (default 5)
set -euo pipefail
cd "$(dirname "$0")/.."

iterations="${1:-5}"

echo "==> building (release)"
cargo build --release -q -p mib-bench --bin serve_bench
cargo test --test serve_soak --no-run -q

echo "==> serve_soak x ${iterations}"
for i in $(seq 1 "${iterations}"); do
  echo "--- iteration ${i}/${iterations}"
  cargo test --test serve_soak -q
done

echo "==> serve_soak under forced dispatch paths (MIB_SIMD override)"
# The soak's bitwise assertions must hold on every SIMD dispatch path,
# not just the auto-detected one. 'scalar' always exists; 'avx2' is
# ignored by the dispatcher on hosts without the feature.
for path in scalar avx2; do
  echo "--- MIB_SIMD=${path}"
  MIB_SIMD="${path}" cargo test --test serve_soak -q
done

echo "==> serve_bench (full trace)"
cargo run --release -q -p mib-bench --bin serve_bench

echo "==> network soak (socket-level load, both loop modes)"
# A sustained run over real sockets: ~20k closed-loop + 2k open-loop
# requests through the mib-net front-end with sampled bitwise
# verification every 200th answer. Catches scheduling-dependent protocol
# bugs (demux races, writer-ordering, shed/retry loops) that single-shot
# tests miss. Writes nothing to results/ (smoke mode).
cargo build --release -q -p mib-bench --bin load_bench
cargo run --release -q -p mib-bench --bin load_bench -- \
  --smoke --requests 20000 --clients 4 --sample-every 200 >/dev/null

echo "Soak passed (${iterations} iterations + full trace + network soak)."
