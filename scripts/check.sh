#!/usr/bin/env bash
# Repository gate: formatting, lints and the full test suite.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "All checks passed."
