#!/usr/bin/env bash
# Repository gate: formatting, lints and the full test suite.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy --workspace (pedantic)"
# Pedantic pass with a curated allowlist: the denied subset must stay
# clean; the allowed lints are stylistic choices this codebase makes
# deliberately (see DESIGN.md). Vendored dependency stubs are excluded —
# they mirror external APIs and are held to the plain -D warnings bar
# above instead.
cargo clippy --workspace --all-targets \
  --exclude criterion --exclude proptest --exclude rand \
  -- -D warnings -W clippy::pedantic \
  -A clippy::cast_precision_loss \
  -A clippy::cast_possible_truncation \
  -A clippy::cast_sign_loss \
  -A clippy::cast_possible_wrap \
  -A clippy::cast_lossless \
  -A clippy::similar_names \
  -A clippy::many_single_char_names \
  -A clippy::too_many_lines \
  -A clippy::too_many_arguments \
  -A clippy::missing_panics_doc \
  -A clippy::missing_errors_doc \
  -A clippy::module_name_repetitions \
  -A clippy::doc_markdown \
  -A clippy::must_use_candidate \
  -A clippy::return_self_not_must_use \
  -A clippy::float_cmp \
  -A clippy::needless_range_loop \
  -A clippy::unreadable_literal \
  -A clippy::items_after_statements \
  -A clippy::inline_always \
  -A clippy::struct_excessive_bools \
  -A clippy::wildcard_imports \
  -A clippy::match_same_arms \
  -A clippy::if_not_else \
  -A clippy::single_match_else \
  -A clippy::redundant_closure_for_method_calls \
  -A clippy::explicit_iter_loop \
  -A clippy::uninlined_format_args \
  -A clippy::manual_assert \
  -A clippy::range_plus_one \
  -A clippy::unnecessary_wraps \
  -A clippy::unused_self \
  -A clippy::fn_params_excessive_bools \
  -A clippy::large_types_passed_by_value \
  -A clippy::trivially_copy_pass_by_ref \
  -A clippy::semicolon_if_nothing_returned \
  -A clippy::ptr_arg \
  -A clippy::implicit_hasher

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> serving runtime (mib-serve tests + soak + smoke trace)"
cargo test -p mib-serve -q
cargo test --test serve_soak -q
cargo run --release -q -p mib-bench --bin serve_bench -- --smoke >/dev/null

echo "==> network front-end (mib-net tests + loopback load smoke gate)"
# Frame-codec proptests, loopback protocol tests, then a few thousand
# requests over real sockets in both loop modes: bitwise verification of
# sampled answers, explicit rate-limit sheds on the limited tenant, zero
# unexplained sheds, zero decode errors (all asserted inside the bin).
cargo test -p mib-net -q
cargo run --release -q -p mib-bench --bin load_bench -- --smoke >/dev/null

echo "==> solver backends (ADMM/PDQP convergence gate)"
cargo run --release -q -p mib-bench --bin backend_bench -- --smoke >/dev/null

echo "==> SIMD kernels (dispatch-path agreement + bench schema smoke gate)"
# Every benched kernel is cross-checked bitwise between the portable and
# the vectorized dispatch path on a fixed seed, and the emitted JSON must
# validate; the differential proptest suite runs under --workspace above.
cargo run --release -q -p mib-bench --bin kernel_bench -- --smoke >/dev/null

echo "==> static timing (predicted-vs-simulated smoke gate + checked-profile tests)"
# One instance per domain: every compiled program's statically predicted
# cycles and attribution must equal the simulator's, bitwise, and forced
# appends must stay at the committed baseline.
cargo run --release -q -p mib-bench --bin verify_schedules -- --smoke >/dev/null
# Re-run the cycle-accounting tests optimized but with debug assertions
# and overflow checks armed (the [profile.checked] build).
cargo test --profile checked --test static_timing --test proptest_timing -q

echo "==> tracing (enabled-mode pipeline + cycle attribution + zero-alloc guard)"
cargo test --test trace_pipeline -q
cargo test --test timeline_attribution -q
cargo test --test zero_alloc -q
cargo run --release -q -p mib-bench --bin trace_report -- --smoke >/dev/null

echo "==> benchmark regression gate (working tree vs HEAD baselines)"
# Diffs results/BENCH_serve.json and results/BENCH_kernels.json against
# the copies committed at HEAD with generous single-core tolerances;
# fails on lost runs/rows, large slowdowns, or obs overhead >= 5%.
scripts/bench_diff.sh

echo "All checks passed."
