#!/usr/bin/env bash
# Benchmark regression gate: diff the working-tree benchmark documents
# against the copies committed at a baseline revision (default HEAD).
#
#   scripts/bench_diff.sh [baseline-rev]
#
# Exits 0 when every tracked metric is within tolerance, 1 on a
# regression, 2 when inputs are unreadable (see crates/bench/src/diff.rs
# for the per-metric rules). A benchmark file absent from the baseline
# revision is skipped — there is nothing to regress against.
set -euo pipefail
cd "$(dirname "$0")/.."

rev="${1:-HEAD}"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

args=()
for doc in serve kernels; do
    if git cat-file -e "$rev:results/BENCH_${doc}.json" 2>/dev/null; then
        git show "$rev:results/BENCH_${doc}.json" > "$tmpdir/BENCH_${doc}.json"
        args+=("--baseline-${doc}" "$tmpdir/BENCH_${doc}.json")
    else
        echo "bench_diff: no results/BENCH_${doc}.json at ${rev}; skipping" >&2
    fi
done

if [ "${#args[@]}" -eq 0 ]; then
    echo "bench_diff: no baseline benchmark documents at ${rev}; nothing to diff" >&2
    exit 0
fi

cargo run --quiet --release -p mib-bench --bin bench_diff -- "${args[@]}"
