#!/usr/bin/env bash
# Static certification gate: run the mib-verify dataflow/structural
# verifier over every benchmark-suite schedule (five domains, both KKT
# variants) and fail on any error-severity finding.
#
# Pass --full to certify all 20 instances per domain instead of the
# default three-instance sample.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo run --release -p mib-bench --bin verify_schedules"
cargo run --release -p mib-bench --bin verify_schedules -- "$@"
