#!/usr/bin/env bash
# Tracing demo: regenerate the per-domain Chrome traces and the committed
# deterministic summary, then replay the full verify_schedules program
# set through the cycle-attribution identity check (release mode, so the
# large instances lower quickly).
#
# Artifacts:
#   results/trace_report.txt     deterministic summary (committed)
#   results/<domain>.trace.json  Chrome trace-event JSON (gitignored);
#                                load into Perfetto or chrome://tracing
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo run --release -p mib-bench --bin trace_report"
cargo run --release -q -p mib-bench --bin trace_report

echo "==> timeline attribution over the full verify_schedules sample"
MIB_TIMELINE_FULL=1 cargo test --release -q --test timeline_attribution

echo "trace demo complete; open results/<domain>.trace.json in Perfetto."
